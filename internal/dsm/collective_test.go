package dsm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/sim"
	"dsmrace/internal/trace"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cell%d", i)
	}
	return out
}

func allocCells(t *testing.T, c *Cluster, n int) {
	t.Helper()
	for i, name := range names(n) {
		c.MustAlloc(name, i, 1)
	}
}

func TestOneSidedBroadcastGatherScatter(t *testing.T) {
	const n = 4
	c := newCluster(t, n, nil, nil)
	allocCells(t, c, n)
	progs := make([]Program, n)
	progs[2] = func(p *Proc) error {
		if err := p.BroadcastOneSided(names(n), 7); err != nil {
			return err
		}
		got, err := p.GatherOneSided(names(n))
		if err != nil {
			return err
		}
		for i, v := range got {
			if v != 7 {
				return fmt.Errorf("cell %d = %d after broadcast", i, v)
			}
		}
		if err := p.ScatterOneSided(names(n), []memory.Word{10, 11, 12, 13}); err != nil {
			return err
		}
		got, err = p.GatherOneSided(names(n))
		if err != nil {
			return err
		}
		for i, v := range got {
			if v != memory.Word(10+i) {
				return fmt.Errorf("cell %d = %d after scatter", i, v)
			}
		}
		return nil
	}
	res, err := c.RunEach(progs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	// One-sidedness: only P2 ran; everyone else's memory was still touched.
	for i := 0; i < n; i++ {
		if res.Memory[i][0] != memory.Word(10+i) {
			t.Fatalf("node %d final = %d", i, res.Memory[i][0])
		}
	}
}

func TestScatterArityError(t *testing.T) {
	c := newCluster(t, 2, nil, nil)
	allocCells(t, c, 2)
	res, err := c.RunEach([]Program{
		func(p *Proc) error { return p.ScatterOneSided(names(2), []memory.Word{1}) },
		nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors[0] == nil || !strings.Contains(res.Errors[0].Error(), "arity") {
		t.Fatalf("err = %v", res.Errors[0])
	}
}

func TestReduceCollectiveScratchTooSmall(t *testing.T) {
	c := newCluster(t, 3, nil, nil)
	c.MustAlloc("scratch", 0, 2) // needs 4
	res, err := c.Run(func(p *Proc) error {
		_, err := p.ReduceCollective("scratch", 1, OpSum, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstError() == nil || !strings.Contains(res.FirstError().Error(), "needs") {
		t.Fatalf("err = %v", res.FirstError())
	}
}

func TestReduceOneSidedErrors(t *testing.T) {
	c := newCluster(t, 2, nil, nil)
	c.MustAlloc("a", 0, 1)
	res, err := c.RunEach([]Program{
		func(p *Proc) error {
			if _, err := p.ReduceOneSided(nil, OpSum); err == nil {
				return errors.New("empty reduce should fail")
			}
			if _, err := p.ReduceOneSided([]string{"missing"}, OpSum); err == nil {
				return errors.New("unknown area should fail")
			}
			return nil
		},
		nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceMaxMinProd(t *testing.T) {
	const n = 3
	c := newCluster(t, n, nil, nil)
	allocCells(t, c, n)
	progs := make([]Program, n)
	progs[0] = func(p *Proc) error {
		if err := p.ScatterOneSided(names(n), []memory.Word{4, 9, 2}); err != nil {
			return err
		}
		for _, tc := range []struct {
			op   ReduceOp
			want memory.Word
		}{
			{OpMax, 9}, {OpMin, 2}, {OpSum, 15}, {OpProd, 72},
		} {
			got, err := p.ReduceOneSided(names(n), tc.op)
			if err != nil {
				return err
			}
			if got != tc.want {
				return fmt.Errorf("%v = %d, want %d", tc.op, got, tc.want)
			}
		}
		return nil
	}
	res, err := c.RunEach(progs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ReduceOp(99).Apply(1, 2)
}

func TestLockDeadlockSurfacesAsError(t *testing.T) {
	// Two processes acquiring two locks in opposite orders with a barrier
	// forcing simultaneity: the classic deadlock. The kernel must report it
	// rather than hang.
	c := newCluster(t, 2, nil, nil)
	c.MustAlloc("a", 0, 1)
	c.MustAlloc("b", 1, 1)
	_, err := c.Run(func(p *Proc) error {
		first, second := "a", "b"
		if p.ID() == 1 {
			first, second = "b", "a"
		}
		if err := p.Lock(first); err != nil {
			return err
		}
		p.Barrier() // both hold their first lock now
		if err := p.Lock(second); err != nil {
			return err
		}
		p.MustUnlock(second)
		p.MustUnlock(first)
		return nil
	})
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestManyBarrierEpochs(t *testing.T) {
	const n, epochs = 3, 25
	c := newCluster(t, n, core.NewExactVWDetector(), nil)
	c.MustAlloc("x", 0, 1)
	res, err := c.Run(func(p *Proc) error {
		for e := 0; e < epochs; e++ {
			if p.ID() == e%p.N() {
				if err := p.Put("x", 0, memory.Word(e)); err != nil {
					return err
				}
			}
			p.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("rotating writer with barriers raced: %v", res.Races[:1])
	}
	if res.Memory[0][0] != epochs-1 {
		t.Fatalf("final = %d", res.Memory[0][0])
	}
}

func TestTraceRecordsAllEventKinds(t *testing.T) {
	c := newCluster(t, 2, core.NewExactVWDetector(), func(cfg *Config) { cfg.Trace = true })
	c.MustAlloc("x", 0, 1)
	res, err := c.Run(func(p *Proc) error {
		p.MustLock("x")
		p.MustPut("x", 0, 1)
		if _, err := p.GetWord("x", 0); err != nil {
			return err
		}
		p.MustUnlock("x")
		p.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.EventKind]int{}
	for _, e := range res.Trace.Events {
		kinds[e.Kind]++
	}
	if kinds[trace.EvPut] != 2 || kinds[trace.EvGet] != 2 {
		t.Fatalf("access events: %v", kinds)
	}
	if kinds[trace.EvLockAcq] != 2 || kinds[trace.EvLockRel] != 2 {
		t.Fatalf("lock events: %v", kinds)
	}
	if kinds[trace.EvBarrier] != 2 {
		t.Fatalf("barrier events: %v", kinds)
	}
}

func TestCASSwappedFlag(t *testing.T) {
	c := newCluster(t, 1, nil, nil)
	c.MustAlloc("x", 0, 1)
	res, err := c.Run(func(p *Proc) error {
		old, swapped, err := p.CompareAndSwap("x", 0, 0, 5)
		if err != nil || !swapped || old != 0 {
			return fmt.Errorf("first cas: %d %v %v", old, swapped, err)
		}
		old, swapped, err = p.CompareAndSwap("x", 0, 0, 9)
		if err != nil || swapped || old != 5 {
			return fmt.Errorf("second cas: %d %v %v", old, swapped, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.Memory[0][0] != 5 {
		t.Fatalf("final = %d", res.Memory[0][0])
	}
}

func TestLocalMemoryBounds(t *testing.T) {
	c, err := New(Config{Procs: 1, Seed: 1, PrivateWords: 4, PublicWords: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *Proc) error {
		if err := p.LocalWrite(3, 1, 2); err == nil {
			return errors.New("out-of-bounds local write must fail")
		}
		if _, err := p.LocalRead(4, 1); err == nil {
			return errors.New("out-of-bounds local read must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestProcClockAndSeqAdvance(t *testing.T) {
	c := newCluster(t, 2, core.NewExactVWDetector(), nil)
	c.MustAlloc("x", 0, 1)
	res, err := c.RunEach([]Program{
		func(p *Proc) error {
			before := p.Clock()
			if err := p.Put("x", 0, 1); err != nil {
				return err
			}
			after := p.Clock()
			if after[0] <= before[0] {
				return fmt.Errorf("clock did not advance: %v -> %v", before, after)
			}
			if p.Seq() != 1 {
				return fmt.Errorf("seq = %d", p.Seq())
			}
			// Returned clock must be a copy.
			after.Tick(0)
			if p.Clock()[0] == after[0] {
				return errors.New("Clock() leaked internal state")
			}
			return nil
		},
		nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownAreaErrorsEverywhere(t *testing.T) {
	c := newCluster(t, 1, nil, nil)
	res, err := c.Run(func(p *Proc) error {
		if err := p.Put("ghost", 0, 1); err == nil {
			return errors.New("put")
		}
		if _, err := p.Get("ghost", 0, 1); err == nil {
			return errors.New("get")
		}
		if _, err := p.FetchAdd("ghost", 0, 1); err == nil {
			return errors.New("fetchadd")
		}
		if _, _, err := p.CompareAndSwap("ghost", 0, 0, 1); err == nil {
			return errors.New("cas")
		}
		if err := p.Lock("ghost"); err == nil {
			return errors.New("lock")
		}
		if err := p.Unlock("ghost"); err == nil {
			return errors.New("unlock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestCutLinkSurfacesAsDeadlock(t *testing.T) {
	// The model assumes reliable links (§III); losing one shows up as the
	// initiator parked forever on its completion, which the kernel reports.
	c := newCluster(t, 2, nil, nil)
	c.MustAlloc("x", 1, 1)
	progs := []Program{
		func(p *Proc) error {
			p.c.Network().CutLink(0, 1)
			return p.Put("x", 0, 1)
		},
		nil,
	}
	_, err := c.RunEach(progs)
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if !strings.Contains(dl.Error(), "put") {
		t.Fatalf("deadlock report should name the stuck operation: %v", dl)
	}
}

func TestLinkRestoreAllowsProgress(t *testing.T) {
	c := newCluster(t, 2, nil, nil)
	c.MustAlloc("x", 1, 1)
	progs := []Program{
		func(p *Proc) error {
			nw := p.c.Network()
			nw.CutLink(0, 1)
			nw.RestoreLink(0, 1)
			return p.Put("x", 0, 7)
		},
		nil,
	}
	res, err := c.RunEach(progs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.Memory[1][0] != 7 {
		t.Fatalf("value = %d", res.Memory[1][0])
	}
}
