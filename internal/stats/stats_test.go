package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Fatalf("summary: %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Std != 0 || s.P99 != 7 || s.P50 != 7 {
		t.Fatalf("single: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("string")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuantileProperties(t *testing.T) {
	f := func(raw [10]uint8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		// Quantiles are bounded by min/max and ordered.
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 9.99, -1, 10, 11} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Fatalf("n = %d", h.N())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(4) != 1 {
		t.Fatalf("buckets: %+v", h)
	}
	out := h.Render(20)
	if !strings.Contains(out, "under=1 over=2") {
		t.Fatalf("render: %s", out)
	}
}

func TestHistogramBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Row("alpha", 1)
	tb.Row("b", 2.5)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "2.500") {
		t.Fatalf("float formatting: %q", lines[4])
	}
	// Columns align: header and row share the prefix width.
	if strings.Index(lines[1], "value") != strings.Index(lines[3], "1") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.Row("x")
	if strings.Contains(tb.String(), "==") {
		t.Fatal("empty title must not render")
	}
}
