// Package stats provides the summary statistics (mean/quantile summaries,
// ASCII histograms) and the fixed-width table rendering used by the
// experiment harness (cmd/raceexp) and EXPERIMENTS.md. Tables render
// deterministically from row-insertion order, which keeps experiment
// output diffable across runs and across the parallel driver's worker
// counts.
package stats
