package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P50, P90, P99    float64
	Sum              float64
	sortedForQuantts []float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var varsum float64
	for _, x := range sorted {
		d := x - s.Mean
		varsum += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(varsum / float64(s.N-1))
	}
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Histogram is a fixed-bucket histogram.
type Histogram struct {
	lo, hi  float64
	buckets []int
	under   int
	over    int
	n       int
}

// NewHistogram returns a histogram of `buckets` equal bins over [lo, hi).
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 || hi <= lo {
		panic("stats: bad histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, buckets)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
		h.buckets[idx]++
	}
}

// N returns the observation count.
func (h *Histogram) N() int { return h.n }

// Bucket returns the count of bin i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// Render draws the histogram with unicode-free ASCII bars.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	max := 1
	for _, b := range h.buckets {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	step := (h.hi - h.lo) / float64(len(h.buckets))
	for i, b := range h.buckets {
		bar := strings.Repeat("#", b*width/max)
		fmt.Fprintf(&sb, "%10.2f..%-10.2f %6d %s\n", h.lo+float64(i)*step, h.lo+float64(i+1)*step, b, bar)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&sb, "(under=%d over=%d)\n", h.under, h.over)
	}
	return sb.String()
}

// Table renders aligned text tables for the experiment reports.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&sb, "%-*s", width[i]+2, c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
