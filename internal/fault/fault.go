package fault

import (
	"fmt"

	"dsmrace/internal/network"
	"dsmrace/internal/sim"
)

// Op is a scheduled fault action.
type Op int

// Fault operations. Link ops are directed (Src→Dst); node ops take the
// whole node down or bring it back.
const (
	CutLink Op = iota
	HealLink
	Crash
	Restart
)

var opNames = [...]string{"cut", "heal", "crash", "restart"}

// String returns the op's schedule label.
func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// AnyKind matches every message kind in a DropRule.
const AnyKind = network.Kind(-1)

// AnyNode matches every node in a DropRule endpoint.
const AnyNode = -1

// Event is one scheduled fault: at virtual time At, perform Op. Crash and
// Restart name a Node; CutLink and HealLink name a directed Src→Dst link.
type Event struct {
	At       sim.Time
	Op       Op
	Node     int
	Src, Dst int
}

// DropRule loses a fraction P of matching messages. Kind filters by message
// kind (AnyKind matches all); Src and Dst filter the endpoints (AnyNode
// matches all). The per-message decision is a hash of the schedule seed, the
// directed link, the link's send ordinal and the kind — no RNG stream is
// consumed, so the decision is identical at every kernel count.
type DropRule struct {
	Kind     network.Kind
	P        float64
	Src, Dst int
}

// Default lifecycle parameters, in virtual nanoseconds. They sit an order
// of magnitude above the default fabric's round-trip so a healthy-but-slow
// op never trips its deadline.
const (
	DefaultTimeout       = sim.Time(50_000) // 50µs before an op's first expiry check
	DefaultRetryBase     = sim.Time(20_000) // 20µs exponential backoff base
	DefaultRetryBudget   = 3                // retransmissions before ErrUnreachable
	DefaultFailoverDelay = sim.Time(10_000) // 10µs crash-to-re-homing blackout
)

// Schedule is a seeded, simulated-time fault plan. The zero value (or a
// schedule with no events and no drop rules) enables the fault layer's code
// paths without ever perturbing the run — the differential tests prove such
// a run bit-identical to one without the layer.
type Schedule struct {
	// Seed salts every hash-derived decision (drop losses, retry jitter).
	Seed int64
	// Events are applied at their virtual times, in slice order for
	// same-instant events, before any program event at the same instant.
	Events []Event
	// Drop holds probabilistic per-kind message-loss rules.
	Drop []DropRule
	// Timeout is the deadline armed for every initiator op (0 = default).
	Timeout sim.Time
	// RetryBase is the exponential-backoff base between retransmissions
	// (0 = default).
	RetryBase sim.Time
	// RetryBudget is the number of retransmissions before an op fails with
	// ErrUnreachable (0 = default).
	RetryBudget int
	// FailoverDelay is how long after a crash the node's home areas re-home
	// to the successor. It is clamped up to the multi-kernel lookahead at
	// every kernel count (including one) so re-homing commits at the same
	// instant everywhere.
	FailoverDelay sim.Time
}

// Hostile reports whether the schedule can actually perturb a run (it has
// events or drop rules). A non-hostile schedule still threads the fault
// layer through the stack — useful for differential testing — but arms no
// deadlines and files no events, so it adds nothing to event counts.
func (s *Schedule) Hostile() bool {
	return s != nil && (len(s.Events) > 0 || len(s.Drop) > 0)
}

// Resolved returns a copy with defaults applied. minFailover is the
// scheduling floor for re-homing (the caller passes the conservative-window
// lookahead so a barrier-filed transfer lands before the successor serves).
func (s Schedule) Resolved(minFailover sim.Time) Schedule {
	r := s
	if r.Timeout <= 0 {
		r.Timeout = DefaultTimeout
	}
	if r.RetryBase <= 0 {
		r.RetryBase = DefaultRetryBase
	}
	if r.RetryBudget <= 0 {
		r.RetryBudget = DefaultRetryBudget
	}
	if r.FailoverDelay <= 0 {
		r.FailoverDelay = DefaultFailoverDelay
	}
	if r.FailoverDelay < minFailover {
		r.FailoverDelay = minFailover
	}
	return r
}

// Validate checks the schedule against a cluster of n nodes.
func (s *Schedule) Validate(n int) error {
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d (%s) at negative time %d", i, ev.Op, ev.At)
		}
		switch ev.Op {
		case Crash, Restart:
			if ev.Node < 0 || ev.Node >= n {
				return fmt.Errorf("fault: event %d (%s) names node %d outside [0,%d)", i, ev.Op, ev.Node, n)
			}
		case CutLink, HealLink:
			if ev.Src < 0 || ev.Src >= n || ev.Dst < 0 || ev.Dst >= n {
				return fmt.Errorf("fault: event %d (%s) names link %d->%d outside [0,%d)", i, ev.Op, ev.Src, ev.Dst, n)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown op %d", i, int(ev.Op))
		}
	}
	for i, r := range s.Drop {
		if r.P < 0 || r.P > 1 {
			return fmt.Errorf("fault: drop rule %d has probability %g outside [0,1]", i, r.P)
		}
		if r.Src != AnyNode && (r.Src < 0 || r.Src >= n) {
			return fmt.Errorf("fault: drop rule %d names src %d outside [0,%d)", i, r.Src, n)
		}
		if r.Dst != AnyNode && (r.Dst < 0 || r.Dst >= n) {
			return fmt.Errorf("fault: drop rule %d names dst %d outside [0,%d)", i, r.Dst, n)
		}
	}
	return nil
}

// Injector drives a resolved Schedule into a network and the layers above
// it. The layers register recovery hooks before Arm; Arm pre-files every
// fault as kernel events — one replica per shard, flipping that shard's own
// fault view — during the serial setup phase, so the events carry setup-
// phase keys and always execute before same-instant program events, at
// every kernel count.
type Injector struct {
	Sched Schedule
	net   *network.Network
	nodes int

	// CrashSweep runs on every shard at the instant of a crash: purge the
	// crashed node from this shard's directories, locks and pending tables.
	CrashSweep func(shard, node int, at sim.Time)
	// Failover runs on every shard when a crashed node's areas re-home
	// (FailoverDelay after the crash, skipped if the node restarted first).
	Failover func(shard, node, successor int)
	// NodeCrashed / NodeRestarted run only on the crashed node's owner
	// shard, for process-level bookkeeping.
	NodeCrashed   func(node int)
	NodeRestarted func(node int)

	// sendSeq counts drop-policy consultations per directed link. Each slot
	// is touched only from the source's owning shard, the same single-writer
	// discipline as the network's FIFO horizon.
	sendSeq  []uint64
	overhead uint64
}

// NewInjector wires an injector for a resolved schedule.
func NewInjector(sched Schedule, net *network.Network) *Injector {
	return &Injector{Sched: sched, net: net, nodes: net.N()}
}

func (inj *Injector) kernel(sh int) *sim.Kernel {
	if mk := inj.net.Multi(); mk != nil {
		return mk.Shard(sh)
	}
	return inj.net.Kernel()
}

// Arm pre-files the schedule. Call during the serial setup phase, after
// recovery hooks are registered and before processes are spawned, so fault
// events sort before same-instant program events.
func (inj *Injector) Arm() {
	// Install the drop policy only if some rule can actually fire. P<=0
	// rules still arm deadlines (Hostile counts them) but never consult
	// the hash, so pruning them keeps the per-send path consult-free for
	// armed-but-idle schedules without changing any decision.
	for _, r := range inj.Sched.Drop {
		if r.P > 0 {
			inj.sendSeq = make([]uint64, inj.nodes*inj.nodes)
			inj.net.DropPolicy = inj.dropPolicy
			break
		}
	}
	shards := inj.net.ShardCount()
	for _, ev := range inj.Sched.Events {
		ev := ev
		switch ev.Op {
		case CutLink, HealLink:
			isDown := ev.Op == CutLink
			for s := 0; s < shards; s++ {
				s := s
				inj.kernel(s).At(ev.At, func() {
					inj.net.SetLinkFault(s, network.NodeID(ev.Src), network.NodeID(ev.Dst), isDown)
				})
				inj.overhead++
			}
		case Crash:
			owner := inj.net.ShardOf(network.NodeID(ev.Node))
			for s := 0; s < shards; s++ {
				s := s
				inj.kernel(s).At(ev.At, func() {
					inj.net.SetNodeFault(s, network.NodeID(ev.Node), true)
					if inj.CrashSweep != nil {
						inj.CrashSweep(s, ev.Node, ev.At)
					}
					if s == owner && inj.NodeCrashed != nil {
						inj.NodeCrashed(ev.Node)
					}
				})
				inj.overhead++
			}
			activeAt := ev.At + inj.Sched.FailoverDelay
			for s := 0; s < shards; s++ {
				s := s
				inj.kernel(s).At(activeAt, func() {
					// A restart before the failover instant cancels the
					// re-homing; every shard reads its own view, which
					// flipped at the same instant everywhere.
					if !inj.net.NodeFaulted(s, network.NodeID(ev.Node)) {
						return
					}
					succ := inj.successor(s, ev.Node)
					if succ >= 0 && inj.Failover != nil {
						inj.Failover(s, ev.Node, succ)
					}
				})
				inj.overhead++
			}
		case Restart:
			owner := inj.net.ShardOf(network.NodeID(ev.Node))
			for s := 0; s < shards; s++ {
				s := s
				inj.kernel(s).At(ev.At, func() {
					inj.net.SetNodeFault(s, network.NodeID(ev.Node), false)
					if s == owner && inj.NodeRestarted != nil {
						inj.NodeRestarted(ev.Node)
					}
				})
				inj.overhead++
			}
		}
	}
}

// OverheadEvents returns the number of bookkeeping events Arm filed. The
// count scales with the shard count (every shard replays every flip), so
// callers subtract it from the run's event total to keep that total
// comparable across kernel counts.
func (inj *Injector) OverheadEvents() uint64 { return inj.overhead }

// successor returns the re-homing target for a crashed node: the next node
// id (mod n) alive in this shard's view, or -1 if the whole cluster is
// down. Every shard's view agrees at the failover instant, so the choice is
// identical everywhere.
func (inj *Injector) successor(sh, node int) int {
	for i := 1; i < inj.nodes; i++ {
		cand := (node + i) % inj.nodes
		if !inj.net.NodeFaulted(sh, network.NodeID(cand)) {
			return cand
		}
	}
	return -1
}

// dropPolicy implements network.DropPolicy: hash-derived per-message loss.
// The per-link ordinal advances once per consultation, so the nth surviving
// send on a link sees the same decision at every kernel count.
func (inj *Injector) dropPolicy(sh int, src, dst network.NodeID, kind network.Kind) bool {
	link := int(src)*inj.nodes + int(dst)
	seq := inj.sendSeq[link]
	inj.sendSeq[link]++
	for i := range inj.Sched.Drop {
		r := &inj.Sched.Drop[i]
		if r.P <= 0 {
			continue
		}
		if r.Kind != AnyKind && r.Kind != kind {
			continue
		}
		if r.Src != AnyNode && network.NodeID(r.Src) != src {
			continue
		}
		if r.Dst != AnyNode && network.NodeID(r.Dst) != dst {
			continue
		}
		if hashUnit(uint64(inj.Sched.Seed), uint64(link), seq, uint64(kind), uint64(i)) < r.P {
			return true
		}
	}
	return false
}

// RetryJitter returns a deterministic backoff jitter in [0, base): a hash
// of the seed, the retrying node, a caller-chosen salt and the attempt
// ordinal. Drawing no RNG keeps retransmission times identical at every
// kernel count — the "retry determinism rule". The salt must itself be
// kernel-count-independent: request ids are shard-namespaced and therefore
// must NOT be used; the rdma layer salts with the op's (area, kind)
// instead.
func (inj *Injector) RetryJitter(node int, salt uint64, attempt int, base sim.Time) sim.Time {
	if base <= 0 {
		return 0
	}
	return sim.Time(hashUnit(uint64(inj.Sched.Seed)^0xf00d, uint64(node), salt, uint64(attempt)) * float64(base))
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUnit folds the parts into a uniform float64 in [0, 1).
func hashUnit(parts ...uint64) float64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, p := range parts {
		h = mix64(h ^ p)
	}
	return float64(h>>11) / (1 << 53)
}
