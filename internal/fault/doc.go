// Package fault is the deterministic fault-injection layer: seeded,
// simulated-time schedules of link cuts, heals, node crashes, restarts and
// probabilistic message loss, driven into the transport and the RDMA
// protocol machinery without sacrificing bit-reproducibility.
//
// # Determinism model
//
// Every fault is pre-filed during the serial setup phase as an ordinary
// kernel event — one replica per shard, each flipping only its own shard's
// replica of the fault state (network fault views, failover tables). Setup-
// phase events carry keys smaller than any in-window event, so a fault at
// virtual time T executes before every program event at T, on one kernel
// and on any multi-kernel partition alike. Probabilistic decisions (drop
// losses, retry jitter) are hashes of the schedule seed and stable per-
// message coordinates — never draws from an RNG stream — so they cannot be
// reordered by parallel execution. The result: a hostile schedule replays
// bit-identically across repeated runs and across kernel counts, and an
// empty schedule leaves a run bit-identical to one without the layer.
//
// # Division of labour
//
// The package owns the schedule, the event filing and the hash policy; the
// layers above register recovery hooks on the Injector. internal/rdma hooks
// CrashSweep (purge directories, fail the crashed node's in-flight ops,
// drain its lock queues, reclaim pooled structs) and Failover (flip the
// per-shard home-override tables that re-home the crashed node's areas to
// the deterministic successor); internal/dsm hooks NodeCrashed and
// NodeRestarted for process-level bookkeeping (crash flags, fresh clock
// columns on rejoin).
package fault
