package network

import (
	"math/rand"
	"testing"

	"dsmrace/internal/sim"
)

// shrinkLatency serves a huge delay for the first message and a tiny one
// afterwards — crafted so a stale per-link FIFO horizon is observable.
type shrinkLatency struct{ calls *int }

func (s shrinkLatency) Name() string { return "shrink" }
func (s shrinkLatency) Delay(a, b NodeID, bytes int, rng *rand.Rand) sim.Time {
	*s.calls++
	if *s.calls == 1 {
		return 1000
	}
	return 10
}

// TestRestoreLinkResetsFIFOHorizon is the regression test for the stale
// lastArrival bug: traffic lost to a cut link must leave no trace in the
// link's FIFO horizon, and healing resets the horizon outright — the first
// post-heal message is timed from its own send, not serialized behind the
// arrival slot of traffic from before (or during) the outage.
func TestRestoreLinkResetsFIFOHorizon(t *testing.T) {
	calls := 0
	k, nw := newTestNet(t, 2, shrinkLatency{calls: &calls})
	var arrivals []sim.Time
	nw.SetHandler(1, func(m *Message) { arrivals = append(arrivals, k.Now()) })
	nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser}) // in flight until t=1000
	k.At(1, func() { nw.CutLink(0, 1) })
	k.At(2, func() { nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser}) }) // dropped
	k.At(3, func() { nw.RestoreLink(0, 1) })
	k.At(5, func() { nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser}) }) // delay 10
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", nw.Dropped)
	}
	want := []sim.Time{15, 1000}
	if len(arrivals) != 2 || arrivals[0] != want[0] || arrivals[1] != want[1] {
		t.Fatalf("arrivals = %v, want %v (post-heal send must not inherit the pre-cut horizon)", arrivals, want)
	}
}

// TestFaultViewHealResetsHorizon pins the same property on the fault-view
// path used by injected schedules (SetLinkFault heal, source-shard reset).
func TestFaultViewHealResetsHorizon(t *testing.T) {
	calls := 0
	k, nw := newTestNet(t, 2, shrinkLatency{calls: &calls})
	nw.EnableFaults()
	var arrivals []sim.Time
	nw.SetHandler(1, func(m *Message) { arrivals = append(arrivals, k.Now()) })
	nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser})
	k.At(1, func() { nw.SetLinkFault(0, 0, 1, true) })
	k.At(2, func() { nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser}) }) // dropped
	k.At(3, func() { nw.SetLinkFault(0, 0, 1, false) })
	k.At(5, func() { nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{15, 1000}
	if len(arrivals) != 2 || arrivals[0] != want[0] || arrivals[1] != want[1] {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}
}
