// Package network simulates the interconnection network of §III: reliable
// point-to-point FIFO links between nodes, pluggable latency models
// (constant, linear α+β·n calibrated to InfiniBand/Myrinet, hop-counted
// topologies, jitter wrappers) and per-kind message/byte accounting used by
// the overhead experiments (E-T2, E-T12).
//
// Message kinds classify every packet for the statistics tables: data kinds
// (put/get/fetch and their replies, atomics) move application payload;
// clock and lock kinds exist only because of the detection machinery; the
// coherence kinds inval/inval.ack exist only because of write-invalidate's
// replica management. Kind.IsOverhead draws exactly that line, so
// Stats.OverheadMsgs answers "what does detection+coherence cost on the
// wire" directly.
//
// Delivery preserves FIFO order per directed link (a message cannot
// overtake an earlier one on the same link) — a property the runtime
// exploits: lock grants and invalidations from the same home arrive in
// issue order, which is what makes lock-disciplined programs coherent
// under write-invalidate without extra synchronisation traffic.
package network
