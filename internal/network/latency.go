package network

import (
	"fmt"
	"math/rand"

	"dsmrace/internal/sim"
)

// LatencyModel computes the one-way delay of a message.
type LatencyModel interface {
	// Name identifies the model in reports.
	Name() string
	// Delay returns the transfer delay for a message of size bytes from a
	// to b. rng is the kernel's deterministic source; models without jitter
	// must not consume from it.
	Delay(a, b NodeID, bytes int, rng *rand.Rand) sim.Time
}

// Constant is a fixed one-way latency regardless of size and distance;
// loopback is free.
type Constant struct{ L sim.Time }

// Name implements LatencyModel.
func (c Constant) Name() string { return fmt.Sprintf("const(%v)", c.L) }

// Delay implements LatencyModel.
func (c Constant) Delay(a, b NodeID, bytes int, _ *rand.Rand) sim.Time {
	if a == b {
		return 0
	}
	return c.L
}

// Linear is the classic α+β·n model: fixed per-message cost plus a per-byte
// cost. InfiniBand-class defaults are provided by DefaultIB.
type Linear struct {
	Alpha   sim.Time // per-message latency
	PerByte sim.Time // transfer time per byte
}

// DefaultIB returns a latency model loosely calibrated to the hardware the
// paper motivates (InfiniBand-class: ~1.5us one-way latency, ~3GB/s).
func DefaultIB() Linear {
	return Linear{Alpha: 1500 * sim.Nanosecond, PerByte: sim.Time(1)} // ~1ns/byte
}

// DefaultMyrinet returns a model loosely calibrated to Myrinet-class
// hardware (~3us, ~2GB/s), the paper's other named interconnect.
func DefaultMyrinet() Linear {
	return Linear{Alpha: 3 * sim.Microsecond, PerByte: sim.Time(2)}
}

// Name implements LatencyModel.
func (l Linear) Name() string { return fmt.Sprintf("linear(a=%v,b=%v/B)", l.Alpha, l.PerByte) }

// Delay implements LatencyModel.
func (l Linear) Delay(a, b NodeID, bytes int, _ *rand.Rand) sim.Time {
	if a == b {
		return 0
	}
	return l.Alpha + sim.Time(bytes)*l.PerByte
}

// Hops charges per switch hop on top of a per-byte cost, using a Topology.
type Hops struct {
	Topo    Topology
	PerHop  sim.Time
	PerByte sim.Time
}

// Name implements LatencyModel.
func (h Hops) Name() string { return fmt.Sprintf("hops(%s)", h.Topo.Name()) }

// Delay implements LatencyModel.
func (h Hops) Delay(a, b NodeID, bytes int, _ *rand.Rand) sim.Time {
	return sim.Time(h.Topo.Hops(a, b))*h.PerHop + sim.Time(bytes)*h.PerByte
}

// DrawFreeModel is implemented by latency models whose Delay never consumes
// the random source. The multi-kernel transport uses it to decide whether an
// intra-shard send can be filed immediately during a parallel window (the
// delay is a pure function) or must be deferred to the window barrier, where
// drawing is legal and serially ordered.
type DrawFreeModel interface {
	// DrawFree reports that Delay ignores its rng argument entirely.
	DrawFree() bool
}

// DrawFree implements DrawFreeModel.
func (Constant) DrawFree() bool { return true }

// DrawFree implements DrawFreeModel.
func (Linear) DrawFree() bool { return true }

// DrawFree implements DrawFreeModel.
func (Hops) DrawFree() bool { return true }

// ParallelLookahead derives the conservative-window parameters a model
// admits for a cluster of the given size: look is a guaranteed lower bound
// on every cross-node delay (the window length — nothing sent inside a
// window can arrive before the next one), and deferAll reports whether every
// cross-node send must be deferred to the window barrier because computing
// its delay draws randomness. ok is false when the model cannot support
// deterministic parallel execution at all: an unknown (possibly drawing)
// model, a zero cross-node delay, or a drawing model whose *loopback* sends
// draw (loopback deliveries land inside the sending window and cannot be
// deferred).
//
// Delays are probed at HeaderBytes, the transport's minimum message size;
// like every built-in model, a custom DrawFreeModel must not shrink its
// delay as messages grow.
func ParallelLookahead(m LatencyModel, nodes int) (look sim.Time, deferAll bool, ok bool) {
	if j, isJitter := m.(Jitter); isJitter {
		if df, has := j.Base.(DrawFreeModel); !has || !df.DrawFree() {
			return 0, false, false
		}
		for i := 0; i < nodes; i++ {
			if j.Base.Delay(NodeID(i), NodeID(i), HeaderBytes, nil) != 0 {
				return 0, false, false // jittered loopback would draw mid-window
			}
		}
		base := probeMinDelay(j.Base, nodes)
		if base <= 0 {
			return 0, false, false
		}
		f := 1 - j.Frac
		if f <= 0 {
			return 1, true, true // Delay clamps every jittered delay to >= 1
		}
		look = sim.Time(float64(base)*f) - 1 // floor slack for the float truncation
		if look < 1 {
			look = 1
		}
		return look, true, true
	}
	if df, has := m.(DrawFreeModel); has && df.DrawFree() {
		min := probeMinDelay(m, nodes)
		if min <= 0 {
			return 0, false, false
		}
		return min, false, true
	}
	return 0, false, false
}

// probeMinDelay probes every directed cross-node link at the minimum
// message size. Draw-free models only (rng is nil).
func probeMinDelay(m LatencyModel, nodes int) sim.Time {
	min := sim.Time(-1)
	for a := 0; a < nodes; a++ {
		for b := 0; b < nodes; b++ {
			if a == b {
				continue
			}
			if d := m.Delay(NodeID(a), NodeID(b), HeaderBytes, nil); min < 0 || d < min {
				min = d
			}
		}
	}
	return min
}

// Jitter wraps a base model and scales each delay by a uniform factor in
// [1-Frac, 1+Frac]. Jitter is what makes different seeds explore different
// interleavings, i.e. what makes races manifest (E-T8).
type Jitter struct {
	Base LatencyModel
	Frac float64
}

// Name implements LatencyModel.
func (j Jitter) Name() string { return fmt.Sprintf("jitter(%s,%.0f%%)", j.Base.Name(), j.Frac*100) }

// Delay implements LatencyModel.
func (j Jitter) Delay(a, b NodeID, bytes int, rng *rand.Rand) sim.Time {
	d := j.Base.Delay(a, b, bytes, rng)
	if d == 0 {
		return 0
	}
	f := 1 + j.Frac*(2*rng.Float64()-1)
	out := sim.Time(float64(d) * f)
	if out < 1 {
		out = 1
	}
	return out
}
