package network

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dsmrace/internal/sim"
)

func TestTopologyHops(t *testing.T) {
	cases := []struct {
		topo Topology
		a, b NodeID
		want int
	}{
		{FullMesh{}, 0, 0, 0},
		{FullMesh{}, 0, 5, 1},
		{Ring{N: 6}, 0, 1, 1},
		{Ring{N: 6}, 0, 5, 1}, // wraps
		{Ring{N: 6}, 0, 3, 3},
		{Ring{N: 1}, 0, 0, 0},
		{Torus2D{W: 4, H: 4}, 0, 5, 2},  // (0,0)->(1,1)
		{Torus2D{W: 4, H: 4}, 0, 3, 1},  // wrap in x
		{Torus2D{W: 4, H: 4}, 0, 15, 2}, // (0,0)->(3,3) wraps both
		{Star{}, 2, 2, 0},
		{Star{}, 0, 9, 2},
		{FatTree{Arity: 4}, 0, 3, 2},
		{FatTree{Arity: 4}, 0, 4, 4},
		{FatTree{Arity: 4}, 7, 7, 0},
		{FatTree{Arity: 0}, 0, 1, 4},
	}
	for _, c := range cases {
		if got := c.topo.Hops(c.a, c.b); got != c.want {
			t.Errorf("%s.Hops(%d,%d) = %d, want %d", c.topo.Name(), c.a, c.b, got, c.want)
		}
	}
}

func TestTopologySymmetry(t *testing.T) {
	topos := []Topology{FullMesh{}, Ring{N: 7}, Torus2D{W: 3, H: 5}, Star{}, FatTree{Arity: 3}}
	f := func(a8, b8 uint8) bool {
		a, b := NodeID(a8%14), NodeID(b8%14)
		for _, tp := range topos {
			if tp.Hops(a, b) != tp.Hops(b, a) {
				return false
			}
			if a == b && tp.Hops(a, b) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if d := (Constant{L: 100}).Delay(0, 1, 9999, rng); d != 100 {
		t.Errorf("Constant = %v", d)
	}
	if d := (Constant{L: 100}).Delay(3, 3, 10, rng); d != 0 {
		t.Errorf("Constant loopback = %v", d)
	}
	lin := Linear{Alpha: 1000, PerByte: 2}
	if d := lin.Delay(0, 1, 100, rng); d != 1200 {
		t.Errorf("Linear = %v, want 1200", d)
	}
	if d := lin.Delay(1, 1, 100, rng); d != 0 {
		t.Errorf("Linear loopback = %v", d)
	}
	h := Hops{Topo: Ring{N: 4}, PerHop: 500, PerByte: 1}
	if d := h.Delay(0, 2, 10, rng); d != 1010 {
		t.Errorf("Hops = %v, want 1010", d)
	}
	for _, m := range []LatencyModel{Constant{L: 1}, lin, h, DefaultIB(), DefaultMyrinet(), Jitter{Base: lin, Frac: 0.1}} {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	base := Linear{Alpha: 1000, PerByte: 0}
	j := Jitter{Base: base, Frac: 0.2}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		d := j.Delay(0, 1, 64, rng)
		if d < 800 || d > 1200 {
			t.Fatalf("jitter out of bounds: %v", d)
		}
	}
	if d := j.Delay(2, 2, 64, rng); d != 0 {
		t.Fatalf("jitter loopback = %v", d)
	}
	// Same seed, same sequence.
	a := rand.New(rand.NewSource(5))
	b := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		if j.Delay(0, 1, 64, a) != j.Delay(0, 1, 64, b) {
			t.Fatal("jitter not deterministic under equal seeds")
		}
	}
}

func newTestNet(t *testing.T, n int, lat LatencyModel) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel(sim.Config{Seed: 1})
	return k, New(k, n, lat)
}

func TestSendDeliversAfterLatency(t *testing.T) {
	k, nw := newTestNet(t, 2, Constant{L: 100})
	var at sim.Time
	nw.SetHandler(1, func(m *Message) { at = k.Now() })
	nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser, Size: 64})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Fatalf("delivered at %v, want 100", at)
	}
}

func TestFIFOPerLink(t *testing.T) {
	// With jitter a later message could compute a shorter delay; FIFO must
	// still deliver in send order on the same link.
	k := sim.NewKernel(sim.Config{Seed: 3})
	nw := New(k, 2, Jitter{Base: Linear{Alpha: 1000, PerByte: 0}, Frac: 0.9})
	var got []int
	nw.SetHandler(1, func(m *Message) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 50; i++ {
		nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser, Payload: i})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, got[:i+1])
		}
	}
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
}

func TestStatsAccounting(t *testing.T) {
	k, nw := newTestNet(t, 3, Constant{L: 10})
	for i := 0; i < 3; i++ {
		nw.SetHandler(NodeID(i), func(m *Message) {})
	}
	nw.Send(&Message{Src: 0, Dst: 1, Kind: KindPutReq, Size: 100})
	nw.Send(&Message{Src: 1, Dst: 0, Kind: KindPutAck, Size: 40})
	nw.Send(&Message{Src: 0, Dst: 2, Kind: KindClockRead, Size: 40})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s := nw.Stats().Snapshot()
	if s.TotalMsgs != 3 || s.TotalBytes != 180 {
		t.Fatalf("totals = %d msgs %d bytes", s.TotalMsgs, s.TotalBytes)
	}
	if s.Msgs[KindPutReq] != 1 || s.Bytes[KindPutReq] != 100 {
		t.Fatalf("put.req counters wrong: %v", s)
	}
	if s.OverheadMsgs() != 1 || s.OverheadBytes() != 40 {
		t.Fatalf("overhead = %d msgs %d bytes", s.OverheadMsgs(), s.OverheadBytes())
	}
}

func TestStatsSubAndString(t *testing.T) {
	var a, b Stats
	m1 := &Message{Src: 0, Dst: 1, Kind: KindGetReq, Size: 50}
	a.count(m1)
	a.count(&Message{Src: 0, Dst: 1, Kind: KindGetReply, Size: 90})
	b.count(m1)
	d := a.Sub(b)
	if d.TotalMsgs != 1 || d.TotalBytes != 90 || d.Msgs[KindGetReply] != 1 {
		t.Fatalf("Sub wrong: %v", d)
	}
	if s := d.String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestMinimumHeaderSize(t *testing.T) {
	k, nw := newTestNet(t, 2, Constant{L: 1})
	nw.SetHandler(1, func(m *Message) {})
	nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser, Size: 0})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.Stats().TotalBytes != HeaderBytes {
		t.Fatalf("bytes = %d, want header minimum %d", nw.Stats().TotalBytes, HeaderBytes)
	}
}

func TestCutLinkDropsAndRestore(t *testing.T) {
	k, nw := newTestNet(t, 2, Constant{L: 1})
	delivered := 0
	nw.SetHandler(1, func(m *Message) { delivered++ })
	nw.CutLink(0, 1)
	nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser})
	nw.RestoreLink(0, 1)
	nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 || nw.Dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, nw.Dropped)
	}
}

func TestMissingHandlerPanicsInsideRun(t *testing.T) {
	k, nw := newTestNet(t, 2, Constant{L: 1})
	nw.Send(&Message{Src: 0, Dst: 1, Kind: KindUser})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing handler")
		}
	}()
	_ = k.Run()
}

func TestKindStringAndOverhead(t *testing.T) {
	if KindPutReq.String() != "put.req" || Kind(99).String() != "kind(99)" {
		t.Fatal("Kind.String broken")
	}
	if KindPutReq.IsOverhead() || !KindLockReq.IsOverhead() || !KindClockWrite.IsOverhead() {
		t.Fatal("IsOverhead misclassifies")
	}
}

func TestLoopbackIsImmediateButOrdered(t *testing.T) {
	k, nw := newTestNet(t, 1, DefaultIB())
	var got []int
	nw.SetHandler(0, func(m *Message) { got = append(got, m.Payload.(int)) })
	nw.Send(&Message{Src: 0, Dst: 0, Kind: KindUser, Payload: 1})
	nw.Send(&Message{Src: 0, Dst: 0, Kind: KindUser, Payload: 2})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("loopback order: %v", got)
	}
	if k.Now() != 0 {
		t.Fatalf("loopback consumed time: %v", k.Now())
	}
}
