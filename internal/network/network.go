package network

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dsmrace/internal/sim"
)

// Kind classifies messages for accounting. The experiment tables break
// message counts down by kind to show where the detection overhead goes.
type Kind int

// Message kinds. Data kinds carry application payload; clock and lock kinds
// are pure detection/synchronisation overhead.
const (
	KindPutReq Kind = iota
	KindPutAck
	KindGetReq
	KindGetReply
	KindLockReq
	KindLockGrant
	KindUnlock
	KindClockRead     // literal protocol: get_clock / get_clock_W request
	KindClockReadResp // literal protocol: clock value reply
	KindClockWrite    // literal protocol: put_clock
	KindAtomicReq
	KindAtomicReply
	KindFetchReq   // write-invalidate: whole-area read-miss fetch request
	KindFetchReply // write-invalidate: area data + piggybacked write clock
	KindInval      // write-invalidate: drop-your-copy order from the home
	KindInvalAck   // write-invalidate: invalidation acknowledgement
	KindUpdate     // causal memory: home-fanned data update to sharers
	KindBarrier
	KindUser
	numKinds
)

var kindNames = [...]string{
	"put.req", "put.ack", "get.req", "get.reply",
	"lock.req", "lock.grant", "unlock",
	"clock.read", "clock.read.resp", "clock.write",
	"atomic.req", "atomic.reply",
	"fetch.req", "fetch.reply", "inval", "inval.ack",
	"update",
	"barrier", "user",
}

// String returns the kind's report label.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsOverhead reports whether the kind exists only because of the detection,
// locking or coherence machinery (as opposed to moving application data).
// Fetches carry data and count as data traffic; invalidations carry none.
func (k Kind) IsOverhead() bool {
	switch k {
	case KindLockReq, KindLockGrant, KindUnlock, KindClockRead, KindClockReadResp, KindClockWrite,
		KindInval, KindInvalAck:
		return true
	}
	return false
}

// Message is one network packet. Payload is simulator-internal (the NIC
// knows what to do with it); Size is the modelled wire size in bytes and is
// what the latency model and the statistics see.
type Message struct {
	Src, Dst NodeID
	Kind     Kind
	Size     int
	// Area identifies the memory area the packet concerns, as AreaID+1 so
	// the zero value means "not area-addressed" (barriers, clock traffic).
	// It feeds the exploration layer's independence analysis (two packets
	// on disjoint links and disjoint areas commute) and is not part of the
	// modelled wire size.
	Area    int
	Payload any
}

// HeaderBytes is the modelled per-message header size (addresses, op code,
// memory offsets) — roughly an InfiniBand RC send WQE worth of metadata.
const HeaderBytes = 32

// Handler consumes a delivered message. Handlers run in event context
// ("on the NIC"): they must not block, mirroring OS-bypass hardware.
type Handler func(m *Message)

// Stats accumulates traffic totals. Counters are indexed by Kind.
type Stats struct {
	Msgs       [numKinds]uint64
	Bytes      [numKinds]uint64
	TotalMsgs  uint64
	TotalBytes uint64
}

func (s *Stats) count(m *Message) {
	s.Msgs[m.Kind]++
	s.Bytes[m.Kind] += uint64(m.Size)
	s.TotalMsgs++
	s.TotalBytes += uint64(m.Size)
}

// OverheadMsgs returns the number of messages attributable to detection and
// locking machinery.
func (s *Stats) OverheadMsgs() uint64 {
	var n uint64
	for k := Kind(0); k < numKinds; k++ {
		if k.IsOverhead() {
			n += s.Msgs[k]
		}
	}
	return n
}

// OverheadBytes returns the bytes attributable to detection and locking.
func (s *Stats) OverheadBytes() uint64 {
	var n uint64
	for k := Kind(0); k < numKinds; k++ {
		if k.IsOverhead() {
			n += s.Bytes[k]
		}
	}
	return n
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Stats { return *s }

// Sub returns the difference s - o, counter-wise.
func (s Stats) Sub(o Stats) Stats {
	var d Stats
	for k := 0; k < int(numKinds); k++ {
		d.Msgs[k] = s.Msgs[k] - o.Msgs[k]
		d.Bytes[k] = s.Bytes[k] - o.Bytes[k]
	}
	d.TotalMsgs = s.TotalMsgs - o.TotalMsgs
	d.TotalBytes = s.TotalBytes - o.TotalBytes
	return d
}

// String renders non-zero counters sorted by kind name.
func (s Stats) String() string {
	var rows []string
	for k := Kind(0); k < numKinds; k++ {
		if s.Msgs[k] > 0 {
			rows = append(rows, fmt.Sprintf("%s:%d(%dB)", k, s.Msgs[k], s.Bytes[k]))
		}
	}
	sort.Strings(rows)
	return fmt.Sprintf("msgs=%d bytes=%d [%s]", s.TotalMsgs, s.TotalBytes, strings.Join(rows, " "))
}

// inflight is a pooled in-transit message. The deliver closure is bound
// once when the wrapper is first created and reused for every flight, so a
// steady-state send performs no allocation: the caller's Message literal is
// copied in, delivered, and the wrapper recycled. In a sharded network the
// wrapper belongs to the destination's shard pool (sh non-nil): it is both
// grabbed and released in that shard's context, so pools never race.
type inflight struct {
	net *Network
	sh  *netShard
	m   Message
	fn  func()
}

func (f *inflight) deliver() {
	net := f.net
	if net.fviews != nil {
		// Delivery-time loss: the destination crashed while the message was
		// in flight. The check runs in the destination shard's context (the
		// wrapper's owning shard), against that shard's fault view.
		sh := 0
		if f.sh != nil {
			sh = f.sh.idx
		}
		if v := net.fviews[sh]; v.anyNodeDown && v.nodeDown[f.m.Dst] {
			if f.sh != nil {
				f.sh.dropped++
			} else {
				net.Dropped++
			}
			if net.OnDrop != nil {
				net.OnDrop(sh, f.m.Src, f.m.Dst, f.m.Kind, f.m.Payload)
			}
			f.m.Payload = nil
			if f.sh != nil {
				f.sh.pool = append(f.sh.pool, f)
			} else {
				net.pool = append(net.pool, f)
			}
			return
		}
	}
	h := net.handlers[f.m.Dst]
	if h == nil {
		panic(fmt.Sprintf("network: node %d has no handler", f.m.Dst))
	}
	if net.OnDeliver != nil {
		net.OnDeliver(f.m.Src, f.m.Dst, f.m.Kind, f.m.Size, f.m.Area)
	}
	h(&f.m)
	f.m.Payload = nil
	if f.sh != nil {
		f.sh.pool = append(f.sh.pool, f)
		return
	}
	net.pool = append(net.pool, f)
}

// netShard is one kernel shard's slice of the transport state: traffic
// counters, drop counter and wrapper/envelope pools, touched only from that
// shard's execution context (or the serial barrier).
type netShard struct {
	idx     int
	stats   Stats
	dropped uint64
	pool    []*inflight
	envs    []*envelope
}

// faultView is one shard's replica of the dynamic fault state. Every shard
// holds an identical copy, flipped by that shard's own pre-filed fault
// events at identical virtual times, so in-window reads never cross a shard
// boundary and the visible state is the same at every kernel count.
type faultView struct {
	down        []bool // directed link cuts, same indexing as lastArrival
	anyDown     bool
	nodeDown    []bool // crashed nodes
	anyNodeDown bool
}

func (s *netShard) grabEnv() *envelope {
	if n := len(s.envs); n > 0 {
		e := s.envs[n-1]
		s.envs = s.envs[:n-1]
		return e
	}
	return &envelope{sh: s}
}

func (s *netShard) grabInflight(n *Network) *inflight {
	if p := len(s.pool); p > 0 {
		f := s.pool[p-1]
		s.pool = s.pool[:p-1]
		return f
	}
	f := &inflight{net: n, sh: s}
	f.fn = f.deliver
	return f
}

// envelope is a pooled deferred send: a message whose delivery cannot be
// filed during the parallel window — its destination is on another shard,
// or its delay draws randomness. The window barrier's serial replay files
// it with its exact global key (see Network.fileEnvelope).
type envelope struct {
	sh *netShard // owning (source) shard pool
	at sim.Time  // virtual send time
	m  Message
}

// Network connects n nodes over a latency model. Each node registers exactly
// one delivery handler (its NIC). A network runs either on one kernel (New)
// or sharded across a MultiKernel (NewSharded), where each node's deliveries
// execute on the shard that owns it and cross-shard sends travel through
// window-barrier envelopes.
type Network struct {
	k        *sim.Kernel
	latency  LatencyModel
	handlers []Handler
	// lastArrival enforces FIFO per directed link: a message may not arrive
	// before one sent earlier on the same link. Flat n×n array indexed
	// src*n+dst — Send is the single hottest transport call and a map
	// lookup per message dominated it at large n. In a sharded network a
	// link's slot is touched either always from the source shard (links
	// whose sends file immediately) or always from the serial barrier
	// (deferred links) — never both, so no lock is needed.
	lastArrival []sim.Time
	stats       Stats
	// pool recycles in-flight message wrappers once delivered.
	pool []*inflight
	// down records one-way link cuts for failure injection (same indexing
	// as lastArrival); messages on a down link are silently dropped
	// (counted in Dropped). anyDown short-circuits the per-send check for
	// the overwhelmingly common fully-connected case.
	down    []bool
	anyDown bool
	Dropped uint64
	// OnDrop, when non-nil, receives the endpoints, kind and payload of
	// every dropped message before it vanishes, so the layer that pooled the
	// payload can reclaim it into the right shard's pool (a dropped
	// round-trip request has no reply to trigger the usual release; a
	// dropped reply has no receiver at all). ctxShard is the shard whose
	// execution context the drop happens in: the source's shard for
	// send-time drops (down links, drop-policy losses), the destination's
	// shard for delivery-time drops (crashed destination) — the hook may
	// only touch that shard's pools. The hook deliberately does not see the
	// *Message: taking it would make every caller's Message literal escape
	// to the heap, and Send is the hottest transport call in the simulator.
	OnDrop func(ctxShard int, src, dst NodeID, kind Kind, payload any)
	// DropPolicy, when non-nil, is consulted for every send that survives
	// the link/node checks and may declare the message lost (probabilistic
	// fault injection). It runs in the source shard's context and must be a
	// pure function of its arguments plus per-link state owned by that
	// shard, so the decision is identical at every kernel count.
	DropPolicy func(ctxShard int, src, dst NodeID, kind Kind) bool
	// fviews, when non-nil, enables fault mode: each kernel shard owns a
	// replica of the dynamic fault state (cut links, crashed nodes),
	// mutated only by that shard's own pre-filed fault events so no
	// cross-shard reads ever race. Index 0 is the only view on a
	// single-kernel network.
	fviews []*faultView
	// OnDeliver, when non-nil, observes every delivered message just before
	// its handler runs — in delivery order, which (with a draw-free latency
	// model) is a complete canonical description of the schedule. The
	// exhaustive-exploration checker hashes this sequence to deduplicate
	// schedules; keep the hook cheap, it sits on the delivery hot path.
	OnDeliver func(src, dst NodeID, kind Kind, size, area int)
	// Choice-delay state (EnableChoiceDelay): from chooseAfter onward every
	// send resolves a kernel choice point and stretches its latency by
	// choice × chooseQuantum, turning delivery order itself into an
	// enumerable decision. Single-kernel networks only.
	chooseAfter   sim.Time
	chooseQuantum sim.Time
	chooseSteps   int

	// Sharded-mode state (nil/empty on a single-kernel network):
	mk      *sim.MultiKernel
	kernels []*sim.Kernel // per-shard
	shardOf []int         // node -> shard
	shards  []*netShard
	// deferAll forces every cross-node send through a barrier envelope
	// because computing its delay draws randomness (jittered models).
	deferAll bool
}

// New creates a network for n nodes on kernel k using the given latency
// model (nil defaults to DefaultIB).
func New(k *sim.Kernel, n int, lat LatencyModel) *Network {
	if lat == nil {
		lat = DefaultIB()
	}
	return &Network{
		k:           k,
		latency:     lat,
		handlers:    make([]Handler, n),
		lastArrival: make([]sim.Time, n*n),
		down:        make([]bool, n*n),
	}
}

// NewSharded creates a network for n nodes partitioned across mk's shards
// by shardOf. The latency model must admit parallel execution (see
// ParallelLookahead — the caller is expected to have sized mk's window from
// it); deferAll is that probe's verdict on whether cross-node delays draw
// randomness.
func NewSharded(mk *sim.MultiKernel, shardOf []int, n int, lat LatencyModel, deferAll bool) *Network {
	if lat == nil {
		lat = DefaultIB()
	}
	net := &Network{
		latency:     lat,
		handlers:    make([]Handler, n),
		lastArrival: make([]sim.Time, n*n),
		down:        make([]bool, n*n),
		mk:          mk,
		shardOf:     shardOf,
		deferAll:    deferAll,
	}
	for i := 0; i < mk.Shards(); i++ {
		net.kernels = append(net.kernels, mk.Shard(i))
		net.shards = append(net.shards, &netShard{idx: i})
	}
	mk.SetEnvelopeFiler(net.fileEnvelope)
	return net
}

// linkIndex flattens a directed link into the per-link arrays.
func (n *Network) linkIndex(src, dst NodeID) int {
	return int(src)*len(n.handlers) + int(dst)
}

// N returns the number of attached nodes.
func (n *Network) N() int { return len(n.handlers) }

// Kernel returns the simulation kernel the network is attached to — nil on
// a sharded network, where there is no single kernel; use KernelFor.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// KernelFor returns the kernel that executes node id's events: the shard
// that owns the node, or the single kernel.
func (n *Network) KernelFor(id NodeID) *sim.Kernel {
	if n.mk != nil {
		return n.kernels[n.shardOf[id]]
	}
	return n.k
}

// Multi returns the owning MultiKernel (nil for a single-kernel network).
func (n *Network) Multi() *sim.MultiKernel { return n.mk }

// ShardCount returns the number of kernel shards (1 for a single kernel).
func (n *Network) ShardCount() int {
	if n.mk == nil {
		return 1
	}
	return n.mk.Shards()
}

// ShardOf returns the shard owning node id (0 on a single kernel).
func (n *Network) ShardOf(id NodeID) int {
	if n.shardOf == nil {
		return 0
	}
	return n.shardOf[id]
}

// Stats exposes the live traffic counters. Single-kernel networks only; a
// sharded network accumulates per shard — use TotalStats.
func (n *Network) Stats() *Stats { return &n.stats }

// TotalStats returns the run's traffic counters, summed across shards.
// Counter sums are order-independent, so the totals are bit-identical to
// the single-kernel run's.
func (n *Network) TotalStats() Stats {
	if n.mk == nil {
		return n.stats
	}
	var t Stats
	for _, s := range n.shards {
		for k := 0; k < int(numKinds); k++ {
			t.Msgs[k] += s.stats.Msgs[k]
			t.Bytes[k] += s.stats.Bytes[k]
		}
		t.TotalMsgs += s.stats.TotalMsgs
		t.TotalBytes += s.stats.TotalBytes
	}
	return t
}

// TotalDropped returns the cut-link drop count, summed across shards.
func (n *Network) TotalDropped() uint64 {
	if n.mk == nil {
		return n.Dropped
	}
	var t uint64
	for _, s := range n.shards {
		t += s.dropped
	}
	return t
}

// SetHandler installs the delivery handler (the NIC) for node id.
func (n *Network) SetHandler(id NodeID, h Handler) {
	n.handlers[id] = h
}

// CutLink drops all future messages from a to b (one direction).
func (n *Network) CutLink(a, b NodeID) {
	n.down[n.linkIndex(a, b)] = true
	n.anyDown = true
}

// RestoreLink re-enables the a→b link. The link's FIFO horizon is reset:
// every message sent while the link was down was dropped, so the first
// post-heal message must not be serialized behind the arrival time of
// pre-cut traffic that has long since drained.
func (n *Network) RestoreLink(a, b NodeID) {
	link := n.linkIndex(a, b)
	n.down[link] = false
	n.lastArrival[link] = 0
	n.anyDown = false
	for _, d := range n.down {
		if d {
			n.anyDown = true
			break
		}
	}
}

// EnableFaults switches the network into fault mode: every shard gets a
// replica of the dynamic fault state (cut links, crashed nodes) that the
// fault layer's pre-filed events mutate. With no faults ever filed the views
// stay all-up and the only per-send cost is a nil check and two false
// flags — the zero-fault tax the differential tests pin.
func (n *Network) EnableFaults() {
	shards := n.ShardCount()
	nodes := n.N()
	n.fviews = make([]*faultView, shards)
	for i := range n.fviews {
		n.fviews[i] = &faultView{
			down:     make([]bool, nodes*nodes),
			nodeDown: make([]bool, nodes),
		}
	}
}

// FaultsEnabled reports whether EnableFaults has been called.
func (n *Network) FaultsEnabled() bool { return n.fviews != nil }

// EnableChoiceDelay arms the schedule-exploration hook: every message sent
// at or after virtual time `after` resolves one kernel choice point with
// `steps` alternatives (sim.Kernel.Choose) and adds choice × quantum to its
// modelled latency. With a draw-free latency model this makes the delivery
// interleaving a pure function of the choice vector, which an exhaustive
// driver (internal/mcheck) enumerates depth-first. The time gate lets a
// litmus program run its warm-up phase on the default schedule — no choice
// points, no tree blow-up — and open the enumerated window only around the
// measured operations. Single-kernel networks only: the choice hook's draw
// order is the serial interleaving itself.
func (n *Network) EnableChoiceDelay(after, quantum sim.Time, steps int) {
	if n.mk != nil {
		panic("network: EnableChoiceDelay on a sharded network")
	}
	if steps < 2 || quantum <= 0 {
		panic("network: EnableChoiceDelay needs steps >= 2 and a positive quantum")
	}
	n.chooseAfter = after
	n.chooseQuantum = quantum
	n.chooseSteps = steps
}

// SetLinkFault flips the a→b link in shard sh's fault view. Healing resets
// the link's FIFO horizon (see RestoreLink); since lastArrival is owned by
// the shard that files the link's sends, only the source's owning shard
// performs the reset — the other shards just flip their view flag.
func (n *Network) SetLinkFault(sh int, a, b NodeID, isDown bool) {
	v := n.fviews[sh]
	link := n.linkIndex(a, b)
	v.down[link] = isDown
	if isDown {
		v.anyDown = true
		return
	}
	if sh == n.ShardOf(a) {
		n.lastArrival[link] = 0
	}
	v.anyDown = false
	for _, d := range v.down {
		if d {
			v.anyDown = true
			break
		}
	}
}

// SetNodeFault flips a node's crashed flag in shard sh's fault view.
func (n *Network) SetNodeFault(sh int, node NodeID, isDown bool) {
	v := n.fviews[sh]
	v.nodeDown[node] = isDown
	if isDown {
		v.anyNodeDown = true
		return
	}
	v.anyNodeDown = false
	for _, d := range v.nodeDown {
		if d {
			v.anyNodeDown = true
			break
		}
	}
}

// NodeFaulted reports whether node is crashed in shard sh's fault view.
func (n *Network) NodeFaulted(sh int, node NodeID) bool {
	if n.fviews == nil {
		return false
	}
	v := n.fviews[sh]
	return v.anyNodeDown && v.nodeDown[node]
}

// LinkFaulted reports whether the a→b link is cut in shard sh's fault view.
func (n *Network) LinkFaulted(sh int, a, b NodeID) bool {
	if n.fviews == nil {
		return false
	}
	v := n.fviews[sh]
	return v.anyDown && v.down[n.linkIndex(a, b)]
}

// faultDrop decides whether fault mode loses the message at send time; it
// runs in the source shard's context against that shard's view.
func (n *Network) faultDrop(sh int, link int, m *Message) bool {
	v := n.fviews[sh]
	if v.anyDown && v.down[link] {
		return true
	}
	if v.anyNodeDown && (v.nodeDown[m.Src] || v.nodeDown[m.Dst]) {
		return true
	}
	return n.DropPolicy != nil && n.DropPolicy(sh, m.Src, m.Dst, m.Kind)
}

// Send transmits m; delivery is scheduled on the kernel after the modelled
// latency, preserving FIFO order per directed link. The message is counted
// at send time. Sends to down links are dropped.
//
// The network copies m into a pooled in-flight wrapper: the caller's
// Message is not retained (and with escape analysis a stack literal stays
// on the stack). Handlers receive a *Message that is only valid for the
// duration of the delivery call; payloads are handed off as-is.
func (n *Network) Send(m *Message) { n.send(m, false) }

// SendExempt transmits m bypassing the fault checks. The recovery machinery
// uses it to synthesize completion errors on behalf of a crashed node (whose
// own sends would be dropped); it must be called from the execution context
// of the shard owning m.Src, exactly like Send.
func (n *Network) SendExempt(m *Message) { n.send(m, true) }

func (n *Network) send(m *Message, exempt bool) {
	if m.Size < HeaderBytes {
		m.Size = HeaderBytes
	}
	if n.mk != nil {
		n.sendSharded(m, exempt)
		return
	}
	n.stats.count(m)
	link := n.linkIndex(m.Src, m.Dst)
	if n.anyDown && n.down[link] {
		n.Dropped++
		if n.OnDrop != nil {
			n.OnDrop(0, m.Src, m.Dst, m.Kind, m.Payload)
		}
		return
	}
	if n.fviews != nil && !exempt && n.faultDrop(0, link, m) {
		n.Dropped++
		if n.OnDrop != nil {
			n.OnDrop(0, m.Src, m.Dst, m.Kind, m.Payload)
		}
		return
	}
	d := n.latency.Delay(m.Src, m.Dst, m.Size, n.k.Rand())
	if n.chooseSteps > 1 && n.k.Now() >= n.chooseAfter {
		meta := sim.ChoiceMeta{
			Src: int(m.Src), Dst: int(m.Dst),
			Kind: int(m.Kind), Size: m.Size, Area: m.Area,
			Now:     n.k.Now(),
			Base:    n.k.Now() + d,
			Floor:   n.lastArrival[link],
			Quantum: n.chooseQuantum,
		}
		d += n.chooseQuantum * sim.Time(n.k.ChooseMeta(n.chooseSteps, meta))
	}
	at := n.k.Now() + d
	if last := n.lastArrival[link]; at < last {
		at = last // FIFO: cannot overtake an earlier message on this link
	}
	n.lastArrival[link] = at
	var f *inflight
	if p := len(n.pool); p > 0 {
		f = n.pool[p-1]
		n.pool = n.pool[:p-1]
	} else {
		f = &inflight{net: n}
		f.fn = f.deliver
	}
	f.m = *m
	n.k.At(at, f.fn)
}

// sendSharded is the sharded transmit path; it executes on the shard owning
// m.Src. Loopbacks and — under a draw-free model — intra-shard sends file
// their delivery immediately (the push takes this shard's next key slot,
// exactly where the serial kernel pushed it). Cross-shard sends, and every
// cross-node send under a drawing model, are deferred as envelopes: the
// window barrier's serial replay computes their delay (drawing the shared
// RNG in serial send order), applies the link FIFO, and files the delivery
// into the destination shard at the same global key slot.
func (n *Network) sendSharded(m *Message, exempt bool) {
	sh := n.shardOf[m.Src]
	ss := n.shards[sh]
	ss.stats.count(m)
	link := n.linkIndex(m.Src, m.Dst)
	if n.anyDown && n.down[link] {
		ss.dropped++
		if n.OnDrop != nil {
			n.OnDrop(sh, m.Src, m.Dst, m.Kind, m.Payload)
		}
		return
	}
	if n.fviews != nil && !exempt && n.faultDrop(sh, link, m) {
		ss.dropped++
		if n.OnDrop != nil {
			n.OnDrop(sh, m.Src, m.Dst, m.Kind, m.Payload)
		}
		return
	}
	k := n.kernels[sh]
	if k.InWindow() && m.Src != m.Dst && (n.deferAll || n.shardOf[m.Dst] != sh) {
		env := ss.grabEnv()
		env.at = k.Now()
		env.m = *m
		k.LogEnvelope(env)
		return
	}
	// Immediate filing: loopback (zero-delay, draw-free — guaranteed by the
	// parallel-capability gate) or intra-shard under a draw-free model. In
	// serial phases (setup) the shared RNG is legal and ordered.
	var rng *rand.Rand
	if !k.InWindow() {
		rng = k.Rand()
	}
	d := n.latency.Delay(m.Src, m.Dst, m.Size, rng)
	at := k.Now() + d
	if last := n.lastArrival[link]; at < last {
		at = last
	}
	n.lastArrival[link] = at
	ds := n.shards[n.shardOf[m.Dst]]
	f := ds.grabInflight(n)
	f.m = *m
	// In-window immediate sends are intra-shard by construction (the
	// destination kernel is this kernel); serial-phase sends may cross
	// shards and file straight into the destination's queue.
	n.kernels[n.shardOf[m.Dst]].At(at, f.fn)
}

// fileEnvelope is the barrier replay's deferred-send filer (registered with
// the MultiKernel): compute the delay — drawing the shared RNG exactly
// where the serial kernel drew it — apply the link FIFO, and file the
// delivery into the destination shard with its resolved global key.
func (n *Network) fileEnvelope(envAny any, key uint64) {
	env := envAny.(*envelope)
	m := &env.m
	d := n.latency.Delay(m.Src, m.Dst, m.Size, n.mk.Rand())
	at := env.at + d
	link := n.linkIndex(m.Src, m.Dst)
	if last := n.lastArrival[link]; at < last {
		at = last
	}
	n.lastArrival[link] = at
	ds := n.shards[n.shardOf[m.Dst]]
	f := ds.grabInflight(n)
	f.m = *m
	n.kernels[n.shardOf[m.Dst]].PushKeyed(at, key, f.fn)
	env.m.Payload = nil
	env.sh.envs = append(env.sh.envs, env)
}
