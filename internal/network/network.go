package network

import (
	"fmt"
	"sort"
	"strings"

	"dsmrace/internal/sim"
)

// Kind classifies messages for accounting. The experiment tables break
// message counts down by kind to show where the detection overhead goes.
type Kind int

// Message kinds. Data kinds carry application payload; clock and lock kinds
// are pure detection/synchronisation overhead.
const (
	KindPutReq Kind = iota
	KindPutAck
	KindGetReq
	KindGetReply
	KindLockReq
	KindLockGrant
	KindUnlock
	KindClockRead     // literal protocol: get_clock / get_clock_W request
	KindClockReadResp // literal protocol: clock value reply
	KindClockWrite    // literal protocol: put_clock
	KindAtomicReq
	KindAtomicReply
	KindFetchReq   // write-invalidate: whole-area read-miss fetch request
	KindFetchReply // write-invalidate: area data + piggybacked write clock
	KindInval      // write-invalidate: drop-your-copy order from the home
	KindInvalAck   // write-invalidate: invalidation acknowledgement
	KindBarrier
	KindUser
	numKinds
)

var kindNames = [...]string{
	"put.req", "put.ack", "get.req", "get.reply",
	"lock.req", "lock.grant", "unlock",
	"clock.read", "clock.read.resp", "clock.write",
	"atomic.req", "atomic.reply",
	"fetch.req", "fetch.reply", "inval", "inval.ack",
	"barrier", "user",
}

// String returns the kind's report label.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsOverhead reports whether the kind exists only because of the detection,
// locking or coherence machinery (as opposed to moving application data).
// Fetches carry data and count as data traffic; invalidations carry none.
func (k Kind) IsOverhead() bool {
	switch k {
	case KindLockReq, KindLockGrant, KindUnlock, KindClockRead, KindClockReadResp, KindClockWrite,
		KindInval, KindInvalAck:
		return true
	}
	return false
}

// Message is one network packet. Payload is simulator-internal (the NIC
// knows what to do with it); Size is the modelled wire size in bytes and is
// what the latency model and the statistics see.
type Message struct {
	Src, Dst NodeID
	Kind     Kind
	Size     int
	Payload  any
}

// HeaderBytes is the modelled per-message header size (addresses, op code,
// memory offsets) — roughly an InfiniBand RC send WQE worth of metadata.
const HeaderBytes = 32

// Handler consumes a delivered message. Handlers run in event context
// ("on the NIC"): they must not block, mirroring OS-bypass hardware.
type Handler func(m *Message)

// Stats accumulates traffic totals. Counters are indexed by Kind.
type Stats struct {
	Msgs       [numKinds]uint64
	Bytes      [numKinds]uint64
	TotalMsgs  uint64
	TotalBytes uint64
}

func (s *Stats) count(m *Message) {
	s.Msgs[m.Kind]++
	s.Bytes[m.Kind] += uint64(m.Size)
	s.TotalMsgs++
	s.TotalBytes += uint64(m.Size)
}

// OverheadMsgs returns the number of messages attributable to detection and
// locking machinery.
func (s *Stats) OverheadMsgs() uint64 {
	var n uint64
	for k := Kind(0); k < numKinds; k++ {
		if k.IsOverhead() {
			n += s.Msgs[k]
		}
	}
	return n
}

// OverheadBytes returns the bytes attributable to detection and locking.
func (s *Stats) OverheadBytes() uint64 {
	var n uint64
	for k := Kind(0); k < numKinds; k++ {
		if k.IsOverhead() {
			n += s.Bytes[k]
		}
	}
	return n
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Stats { return *s }

// Sub returns the difference s - o, counter-wise.
func (s Stats) Sub(o Stats) Stats {
	var d Stats
	for k := 0; k < int(numKinds); k++ {
		d.Msgs[k] = s.Msgs[k] - o.Msgs[k]
		d.Bytes[k] = s.Bytes[k] - o.Bytes[k]
	}
	d.TotalMsgs = s.TotalMsgs - o.TotalMsgs
	d.TotalBytes = s.TotalBytes - o.TotalBytes
	return d
}

// String renders non-zero counters sorted by kind name.
func (s Stats) String() string {
	var rows []string
	for k := Kind(0); k < numKinds; k++ {
		if s.Msgs[k] > 0 {
			rows = append(rows, fmt.Sprintf("%s:%d(%dB)", k, s.Msgs[k], s.Bytes[k]))
		}
	}
	sort.Strings(rows)
	return fmt.Sprintf("msgs=%d bytes=%d [%s]", s.TotalMsgs, s.TotalBytes, strings.Join(rows, " "))
}

// inflight is a pooled in-transit message. The deliver closure is bound
// once when the wrapper is first created and reused for every flight, so a
// steady-state send performs no allocation: the caller's Message literal is
// copied in, delivered, and the wrapper recycled.
type inflight struct {
	net *Network
	m   Message
	fn  func()
}

func (f *inflight) deliver() {
	h := f.net.handlers[f.m.Dst]
	if h == nil {
		panic(fmt.Sprintf("network: node %d has no handler", f.m.Dst))
	}
	h(&f.m)
	f.m.Payload = nil
	f.net.pool = append(f.net.pool, f)
}

// Network connects n nodes over a latency model. Each node registers exactly
// one delivery handler (its NIC).
type Network struct {
	k        *sim.Kernel
	latency  LatencyModel
	handlers []Handler
	// lastArrival enforces FIFO per directed link: a message may not arrive
	// before one sent earlier on the same link. Flat n×n array indexed
	// src*n+dst — Send is the single hottest transport call and a map
	// lookup per message dominated it at large n.
	lastArrival []sim.Time
	stats       Stats
	// pool recycles in-flight message wrappers once delivered.
	pool []*inflight
	// down records one-way link cuts for failure injection (same indexing
	// as lastArrival); messages on a down link are silently dropped
	// (counted in Dropped). anyDown short-circuits the per-send check for
	// the overwhelmingly common fully-connected case.
	down    []bool
	anyDown bool
	Dropped uint64
	// OnDrop, when non-nil, receives the kind and payload of every message
	// dropped on a down link before it vanishes, so the layer that pooled
	// the payload can reclaim it (a dropped round-trip request has no reply
	// to trigger the usual release; a dropped reply has no receiver at
	// all). The hook deliberately does not see the *Message: taking it
	// would make every caller's Message literal escape to the heap, and
	// Send is the hottest transport call in the simulator.
	OnDrop func(kind Kind, payload any)
}

// New creates a network for n nodes on kernel k using the given latency
// model (nil defaults to DefaultIB).
func New(k *sim.Kernel, n int, lat LatencyModel) *Network {
	if lat == nil {
		lat = DefaultIB()
	}
	return &Network{
		k:           k,
		latency:     lat,
		handlers:    make([]Handler, n),
		lastArrival: make([]sim.Time, n*n),
		down:        make([]bool, n*n),
	}
}

// linkIndex flattens a directed link into the per-link arrays.
func (n *Network) linkIndex(src, dst NodeID) int {
	return int(src)*len(n.handlers) + int(dst)
}

// N returns the number of attached nodes.
func (n *Network) N() int { return len(n.handlers) }

// Kernel returns the simulation kernel the network is attached to.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Stats exposes the live traffic counters.
func (n *Network) Stats() *Stats { return &n.stats }

// SetHandler installs the delivery handler (the NIC) for node id.
func (n *Network) SetHandler(id NodeID, h Handler) {
	n.handlers[id] = h
}

// CutLink drops all future messages from a to b (one direction).
func (n *Network) CutLink(a, b NodeID) {
	n.down[n.linkIndex(a, b)] = true
	n.anyDown = true
}

// RestoreLink re-enables the a→b link.
func (n *Network) RestoreLink(a, b NodeID) {
	n.down[n.linkIndex(a, b)] = false
	n.anyDown = false
	for _, d := range n.down {
		if d {
			n.anyDown = true
			break
		}
	}
}

// Send transmits m; delivery is scheduled on the kernel after the modelled
// latency, preserving FIFO order per directed link. The message is counted
// at send time. Sends to down links are dropped.
//
// The network copies m into a pooled in-flight wrapper: the caller's
// Message is not retained (and with escape analysis a stack literal stays
// on the stack). Handlers receive a *Message that is only valid for the
// duration of the delivery call; payloads are handed off as-is.
func (n *Network) Send(m *Message) {
	if m.Size < HeaderBytes {
		m.Size = HeaderBytes
	}
	n.stats.count(m)
	link := n.linkIndex(m.Src, m.Dst)
	if n.anyDown && n.down[link] {
		n.Dropped++
		if n.OnDrop != nil {
			n.OnDrop(m.Kind, m.Payload)
		}
		return
	}
	d := n.latency.Delay(m.Src, m.Dst, m.Size, n.k.Rand())
	at := n.k.Now() + d
	if last := n.lastArrival[link]; at < last {
		at = last // FIFO: cannot overtake an earlier message on this link
	}
	n.lastArrival[link] = at
	var f *inflight
	if p := len(n.pool); p > 0 {
		f = n.pool[p-1]
		n.pool = n.pool[:p-1]
	} else {
		f = &inflight{net: n}
		f.fn = f.deliver
	}
	f.m = *m
	n.k.At(at, f.fn)
}
