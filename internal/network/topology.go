package network

import "fmt"

// NodeID identifies a node (processor) in the system.
type NodeID int

// Topology answers how many switch hops separate two nodes; latency models
// can charge per hop.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string
	// Hops returns the number of hops between two nodes; 0 for loopback.
	Hops(a, b NodeID) int
}

// FullMesh is a crossbar: every pair of distinct nodes is one hop apart.
type FullMesh struct{}

// Name implements Topology.
func (FullMesh) Name() string { return "fullmesh" }

// Hops implements Topology.
func (FullMesh) Hops(a, b NodeID) int {
	if a == b {
		return 0
	}
	return 1
}

// Ring is a bidirectional ring of n nodes.
type Ring struct{ N int }

// Name implements Topology.
func (r Ring) Name() string { return fmt.Sprintf("ring%d", r.N) }

// Hops implements Topology.
func (r Ring) Hops(a, b NodeID) int {
	if r.N <= 1 {
		return 0
	}
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	if w := r.N - d; w < d {
		d = w
	}
	return d
}

// Torus2D is a 2-D torus of W×H nodes; node i sits at (i%W, i/W).
type Torus2D struct{ W, H int }

// Name implements Topology.
func (t Torus2D) Name() string { return fmt.Sprintf("torus%dx%d", t.W, t.H) }

// Hops implements Topology.
func (t Torus2D) Hops(a, b NodeID) int {
	ax, ay := int(a)%t.W, int(a)/t.W
	bx, by := int(b)%t.W, int(b)/t.W
	dx := wrapDist(ax, bx, t.W)
	dy := wrapDist(ay, by, t.H)
	return dx + dy
}

func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n > 0 {
		if w := n - d; w < d {
			d = w
		}
	}
	return d
}

// Star routes every pair through a central switch: two hops, except loopback.
type Star struct{}

// Name implements Topology.
func (Star) Name() string { return "star" }

// Hops implements Topology.
func (Star) Hops(a, b NodeID) int {
	if a == b {
		return 0
	}
	return 2
}

// FatTree approximates a two-level fat tree with a given arity: nodes in the
// same pod (group of Arity) are two hops apart, nodes in different pods four.
type FatTree struct{ Arity int }

// Name implements Topology.
func (f FatTree) Name() string { return fmt.Sprintf("fattree%d", f.Arity) }

// Hops implements Topology.
func (f FatTree) Hops(a, b NodeID) int {
	if a == b {
		return 0
	}
	ar := f.Arity
	if ar <= 0 {
		ar = 1
	}
	if int(a)/ar == int(b)/ar {
		return 2
	}
	return 4
}
