// Masterworker reproduces §IV-D's motivating example of a *benign* race:
// workers deliver results into shared cells concurrently. The detector must
// signal the races — and must not abort the run, because the program is
// correct by design (the delivery order does not matter).
package main

import (
	"fmt"
	"log"

	"dsmrace"
)

const (
	workers        = 5
	tasksPerWorker = 8
)

func main() {
	procs := workers + 1 // P0 is the master
	res, err := dsmrace.Run(dsmrace.RunSpec{
		Procs:    procs,
		Seed:     7,
		Detector: "vw",
		Setup: func(c *dsmrace.Cluster) error {
			// One result accumulator and one completion counter, both on
			// the master's node.
			if err := c.Alloc("results", 0, 1); err != nil {
				return err
			}
			return c.Alloc("done", 0, 1)
		},
		Program: func(p *dsmrace.Proc) error {
			if p.ID() == 0 {
				// Master: poll until all workers reported, then read the total.
				for {
					done, err := p.GetWord("done", 0)
					if err != nil {
						return err
					}
					if int(done) == workers {
						break
					}
					p.Sleep(5000) // 5us between polls
				}
				total, err := p.GetWord("results", 0)
				if err != nil {
					return err
				}
				fmt.Printf("master: total = %d (expected %d)\n", total, workers*tasksPerWorker*(tasksPerWorker+1)/2)
				return nil
			}
			// Worker: compute task results and deliver them — all workers
			// write the same accumulator with no synchronisation.
			for t := 1; t <= tasksPerWorker; t++ {
				p.Sleep(dsmrace.Time(1000 * (p.ID() + t))) // simulate work
				if _, err := p.FetchAdd("results", 0, dsmrace.Word(t)); err != nil {
					return err
				}
			}
			_, err := p.FetchAdd("done", 0, 1)
			return err
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("races signalled: %d (benign by design — execution was never aborted)\n", res.RaceCount)
	fmt.Printf("virtual time: %v, messages: %d\n", res.Duration, res.NetStats.TotalMsgs)
	if len(res.Races) > 0 {
		fmt.Println("first report:", res.Races[0])
	}
}
