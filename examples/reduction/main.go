// Reduction demonstrates the paper's §V-B future-work operation,
// implemented: a non-collective global reduction where one process fetches
// every node's data with one-sided gets and folds locally, with zero
// participation from the data owners — contrasted with the conventional
// collective everyone must join.
package main

import (
	"fmt"
	"log"

	"dsmrace"
)

const n = 8

func main() {
	// One-sided: only P0 has a program at all. The other seven nodes hold
	// data but never execute a single instruction during the reduction.
	names := make([]string, n)
	progs := make([]dsmrace.Program, n)
	progs[0] = func(p *dsmrace.Proc) error {
		// Seed each node's partition remotely, then reduce.
		for i, name := range names {
			if err := p.Put(name, 0, dsmrace.Word(i+1), dsmrace.Word(10*(i+1))); err != nil {
				return err
			}
		}
		sum, err := p.ReduceOneSided(names, dsmrace.OpSum)
		if err != nil {
			return err
		}
		max, err := p.ReduceOneSided(names, dsmrace.OpMax)
		if err != nil {
			return err
		}
		fmt.Printf("one-sided: sum=%d max=%d\n", sum, max)
		return nil
	}
	res, err := dsmrace.Run(dsmrace.RunSpec{
		Procs: n,
		Seed:  1,
		Setup: func(c *dsmrace.Cluster) error {
			for i := range names {
				names[i] = fmt.Sprintf("part%d", i)
				if err := c.Alloc(names[i], i, 2); err != nil {
					return err
				}
			}
			return nil
		},
		Programs: progs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-sided:  %d messages, %v virtual time, 7 of 8 processes idle\n\n",
		res.NetStats.TotalMsgs, res.Duration)

	// Collective: every process contributes and synchronises.
	res2, err := dsmrace.Run(dsmrace.RunSpec{
		Procs: n,
		Seed:  1,
		Setup: func(c *dsmrace.Cluster) error { return c.Alloc("scratch", 0, n+1) },
		Program: func(p *dsmrace.Proc) error {
			sum, err := p.ReduceCollective("scratch", dsmrace.Word(p.ID()+1), dsmrace.OpSum, 0)
			if err != nil {
				return err
			}
			if p.ID() == 0 {
				fmt.Printf("collective: sum=%d\n", sum)
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collective: %d messages, %v virtual time, all 8 processes participate\n",
		res2.NetStats.TotalMsgs, res2.Duration)
}
