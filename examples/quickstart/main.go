// Quickstart: three processes write the same shared variable with no
// synchronisation; the detector signals the races, a barrier-ordered rerun
// is clean, and the exact ground-truth verifier confirms both.
package main

import (
	"fmt"
	"log"

	"dsmrace"
)

func main() {
	// 1. A racy program: every process puts into x concurrently.
	racy, err := dsmrace.Run(dsmrace.RunSpec{
		Procs:    3,
		Seed:     1,
		Detector: "vw-exact",
		Trace:    true,
		Setup: func(c *dsmrace.Cluster) error {
			return c.Alloc("x", 0, 1) // one shared word, homed on P0
		},
		Program: func(p *dsmrace.Proc) error {
			return p.Put("x", 0, dsmrace.Word(p.ID()+1))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("racy run: %d race(s) signalled, final x = %d\n", racy.RaceCount, racy.Memory[0][0])
	for _, r := range racy.Races {
		fmt.Println("  ", r)
	}
	truth, err := dsmrace.GroundTruthOf(racy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth agrees: %d true racing pair(s)\n\n", len(truth.Pairs))

	// 2. The fixed program: write phases separated by barriers.
	clean, err := dsmrace.Run(dsmrace.RunSpec{
		Procs:    3,
		Seed:     1,
		Detector: "vw-exact",
		Trace:    true,
		Setup: func(c *dsmrace.Cluster) error {
			return c.Alloc("x", 0, 1)
		},
		Program: func(p *dsmrace.Proc) error {
			for turn := 0; turn < p.N(); turn++ {
				if turn == p.ID() {
					if err := p.Put("x", 0, dsmrace.Word(p.ID()+1)); err != nil {
						return err
					}
				}
				p.Barrier()
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed run: %d race(s), final x = %d (last barrier turn wins, deterministically)\n",
		clean.RaceCount, clean.Memory[0][0])
	cleanTruth, err := dsmrace.GroundTruthOf(clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth agrees: %d racing pair(s)\n", len(cleanTruth.Pairs))
}
