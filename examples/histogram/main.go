// Histogram compares three implementations of parallel binning over the
// mini-PGAS shared-array layer: atomic updates (benign races, exact
// totals), lock-disciplined read-modify-write (race-free, slower), and raw
// read-modify-write (a real lost-update bug the detector flags).
package main

import (
	"fmt"
	"log"

	"dsmrace"
)

const (
	procs   = 4
	bins    = 8
	updates = 25
)

func setup(c *dsmrace.Cluster) error {
	for b := 0; b < bins; b++ {
		if err := c.Alloc(fmt.Sprintf("bin%d", b), b%procs, 1); err != nil {
			return err
		}
	}
	return nil
}

func run(name, detector string, prog dsmrace.Program) {
	res, err := dsmrace.Run(dsmrace.RunSpec{
		Procs:    procs,
		Seed:     11,
		Detector: detector,
		Setup:    setup,
		Program:  prog,
	})
	if err != nil {
		log.Fatal(err)
	}
	var total dsmrace.Word
	for b := 0; b < bins; b++ {
		total += res.Memory[b%procs][b/procs]
	}
	fmt.Printf("%-14s races=%-5d total=%d/%d  virtual=%v msgs=%d\n",
		name, res.RaceCount, total, procs*updates, res.Duration, res.NetStats.TotalMsgs)
}

func main() {
	bin := func(p *dsmrace.Proc, i int) string {
		return fmt.Sprintf("bin%d", p.Rand().Intn(bins))
	}

	run("atomic", "vw-exact", func(p *dsmrace.Proc) error {
		for i := 0; i < updates; i++ {
			if _, err := p.FetchAdd(bin(p, i), 0, 1); err != nil {
				return err
			}
		}
		return nil
	})

	run("locked", "vw-exact", func(p *dsmrace.Proc) error {
		for i := 0; i < updates; i++ {
			name := bin(p, i)
			if err := p.Lock(name); err != nil {
				return err
			}
			v, err := p.GetWord(name, 0)
			if err != nil {
				return err
			}
			if err := p.Put(name, 0, v+1); err != nil {
				return err
			}
			if err := p.Unlock(name); err != nil {
				return err
			}
		}
		return nil
	})

	run("racy (bug)", "vw-exact", func(p *dsmrace.Proc) error {
		for i := 0; i < updates; i++ {
			name := bin(p, i)
			v, err := p.GetWord(name, 0)
			if err != nil {
				return err
			}
			if err := p.Put(name, 0, v+1); err != nil {
				return err
			}
		}
		return nil
	})

	fmt.Println("\natomic: benign races signalled, totals exact")
	fmt.Println("locked: zero races, totals exact, extra lock traffic")
	fmt.Println("racy:   races flagged AND updates lost — the bug the detector is for")
}
