// Gorace cross-checks the simulator's verdicts against Go's built-in race
// detector (ThreadSanitizer): the same two logical programs — an
// unsynchronised multi-writer and its mutex-fixed twin — are run first on
// the simulated DSM cluster under the paper's detector, then natively on
// goroutines sharing real memory.
//
// Run it twice:
//
//	go run ./examples/gorace          # simulator verdicts only
//	go run -race ./examples/gorace    # TSan flags the same buggy variant
//
// Under -race the unsynchronised native variant prints a DATA RACE warning
// for exactly the program the simulator flags; the mutex variant is silent
// in both worlds.
package main

import (
	"fmt"
	"log"
	"sync"

	"dsmrace"
)

const (
	procs = 4
	incs  = 100
)

// simulated runs the workload on the DSM simulator and reports race flags.
func simulated(locked bool) int {
	res, err := dsmrace.Run(dsmrace.RunSpec{
		Procs:    procs,
		Seed:     1,
		Detector: "vw-exact",
		Setup:    func(c *dsmrace.Cluster) error { return c.Alloc("counter", 0, 1) },
		Program: func(p *dsmrace.Proc) error {
			for i := 0; i < incs; i++ {
				if locked {
					if err := p.Lock("counter"); err != nil {
						return err
					}
				}
				v, err := p.GetWord("counter", 0)
				if err != nil {
					return err
				}
				if err := p.Put("counter", 0, v+1); err != nil {
					return err
				}
				if locked {
					if err := p.Unlock("counter"); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.RaceCount
}

// native runs the same logical program on goroutines over real shared
// memory; `go run -race` hands it to ThreadSanitizer.
func native(locked bool) uint64 {
	var counter uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				if locked {
					mu.Lock()
				}
				counter++ // the racy read-modify-write
				if locked {
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return counter
}

func main() {
	fmt.Println("simulated DSM cluster (paper's detector):")
	fmt.Printf("  unsynchronised: %d race flags\n", simulated(false))
	fmt.Printf("  mutex-fixed:    %d race flags\n", simulated(true))

	fmt.Println("\nnative goroutines (add -race to hand this to TSan):")
	fmt.Printf("  unsynchronised: counter=%d of %d (lost updates possible; -race reports a DATA RACE here)\n",
		native(false), procs*incs)
	fmt.Printf("  mutex-fixed:    counter=%d of %d (silent under -race)\n",
		native(true), procs*incs)
}
