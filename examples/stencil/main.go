// Stencil runs a 1-D halo-exchange relaxation twice: once correctly
// barrier-phased (race-free) and once with the classic forgotten-barrier
// bug. The detector stays silent on the former and pinpoints the latter,
// and a seed sweep shows the buggy variant's results diverge across
// schedules — the paper's operational definition of a race (§III-C).
package main

import (
	"fmt"
	"log"

	"dsmrace"
)

const (
	procs = 4
	width = 8
	iters = 4
)

func seg(i int) string { return fmt.Sprintf("seg%d", i) }

func setup(c *dsmrace.Cluster) error {
	for i := 0; i < procs; i++ {
		if err := c.Alloc(seg(i), i, width); err != nil {
			return err
		}
	}
	return nil
}

func stencil(withBarrier bool) dsmrace.Program {
	return func(p *dsmrace.Proc) error {
		mine := seg(p.ID())
		left := seg((p.ID() + p.N() - 1) % p.N())
		right := seg((p.ID() + 1) % p.N())
		init := make([]dsmrace.Word, width)
		for i := range init {
			init[i] = dsmrace.Word(p.ID() * 100)
		}
		if err := p.Put(mine, 0, init...); err != nil {
			return err
		}
		p.Barrier()
		for it := 0; it < iters; it++ {
			lv, err := p.GetWord(left, width-1)
			if err != nil {
				return err
			}
			rv, err := p.GetWord(right, 0)
			if err != nil {
				return err
			}
			cur, err := p.Get(mine, 0, width)
			if err != nil {
				return err
			}
			next := make([]dsmrace.Word, width)
			for i := range next {
				l, r := lv, rv
				if i > 0 {
					l = cur[i-1]
				}
				if i < width-1 {
					r = cur[i+1]
				}
				next[i] = (l + cur[i] + r) / 3
			}
			if withBarrier {
				p.Barrier() // everyone done reading before anyone writes
			}
			if err := p.Put(mine, 0, next...); err != nil {
				return err
			}
			if withBarrier {
				p.Barrier()
			}
		}
		return nil
	}
}

func main() {
	for _, variant := range []struct {
		name    string
		barrier bool
	}{
		{"correct (barrier-phased)", true},
		{"buggy (missing barrier)", false},
	} {
		res, err := dsmrace.Run(dsmrace.RunSpec{
			Procs:    procs,
			Seed:     1,
			Detector: "vw-exact",
			Setup:    setup,
			Program:  stencil(variant.barrier),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s races=%-4d virtual=%v\n", variant.name, res.RaceCount, res.Duration)
		if res.RaceCount > 0 {
			fmt.Println("  e.g.", res.Races[0])
		}

		sweep, err := dsmrace.ExploreSchedules(dsmrace.RunSpec{
			Procs:    procs,
			Detector: "off",
			Setup:    setup,
			Program:  stencil(variant.barrier),
		}, dsmrace.SeedRange(8))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  8-seed sweep: %d distinct final state(s) — diverged=%v\n\n",
			sweep.DistinctStates(), sweep.Diverged())
	}
}
