// Pgas demonstrates the UPC-style language layer (§I, §III-A): a shared
// array distributed block-wise over the cluster, owner-computes iteration
// with ForAll, a dot product combining local work with a collective, and
// the one-sided whole-array sum of §V-B — with the race detector watching
// every dereference the "compiler" generates.
package main

import (
	"fmt"
	"log"

	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
	"dsmrace/internal/upc"
)

const (
	procs  = 4
	length = 16
)

func main() {
	c, err := dsm.New(dsm.Config{
		Procs: procs,
		Seed:  1,
		RDMA:  rdma.DefaultConfig(core.NewExactVWDetector(), nil),
	})
	if err != nil {
		log.Fatal(err)
	}
	// "Compile time": declare two distributed arrays and a scratch cell.
	x, err := upc.Declare(c, "x", length, upc.Block)
	if err != nil {
		log.Fatal(err)
	}
	y, err := upc.Declare(c, "y", length, upc.Cyclic)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Alloc("scratch", 0, procs+1); err != nil {
		log.Fatal(err)
	}

	res, err := c.Run(func(p *dsm.Proc) error {
		// Phase 1: owner-computes initialisation (upc_forall with affinity).
		if err := x.ForAll(p, func(i int) error {
			return x.Write(p, i, memory.Word(i))
		}); err != nil {
			return err
		}
		if err := y.ForAll(p, func(i int) error {
			return y.Write(p, i, memory.Word(2*i))
		}); err != nil {
			return err
		}
		p.Barrier()

		// Phase 2: distributed dot product — each process folds its owned
		// x-elements against y (remote reads cross the layouts), then a
		// collective sum combines the partials.
		var partial memory.Word
		if err := x.ForAll(p, func(i int) error {
			xv, err := x.Read(p, i)
			if err != nil {
				return err
			}
			yv, err := y.Read(p, i)
			if err != nil {
				return err
			}
			partial += xv * yv
			return nil
		}); err != nil {
			return err
		}
		dot, err := p.ReduceCollective("scratch", partial, dsm.OpSum, 0)
		if err != nil {
			return err
		}

		// Phase 3: P0 alone checks the result with a one-sided sum (§V-B).
		if p.ID() == 0 {
			var want memory.Word
			for i := 0; i < length; i++ {
				want += memory.Word(i) * memory.Word(2*i)
			}
			fmt.Printf("dot(x,y) = %d (expected %d)\n", dot, want)
			sum, err := x.SumOneSided(p)
			if err != nil {
				return err
			}
			fmt.Printf("one-sided sum(x) = %d (expected %d)\n", sum, length*(length-1)/2)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("races: %d — all on the reduce scratch area: disjoint slots of one\n", res.RaceCount)
	fmt.Println("shared variable share one clock, so the concurrent slot writes are flagged")
	fmt.Println("(clock-granularity false sharing, quantified in experiment E-T11; the")
	fmt.Println("distributed arrays themselves stay clean under owner-computes + barriers)")
	fmt.Printf("traffic: %d messages, %v virtual time\n", res.NetStats.TotalMsgs, res.Duration)
}
