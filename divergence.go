package dsmrace

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DivergenceReport is the outcome of a seed sweep: the paper's operational
// race definition (§III-C, "the result of a computation differs between
// executions of this computation") made executable. A program whose final
// memory differs across schedules observably races; a program with one
// final state across the sweep is schedule-insensitive.
type DivergenceReport struct {
	// Seeds are the schedules explored.
	Seeds []int64
	// States maps each distinct final-memory fingerprint to the seeds that
	// produced it.
	States map[string][]int64
	// RaceCounts is the detector's race tally per seed (parallel to Seeds).
	RaceCounts []int
	// Results holds each run's result (parallel to Seeds).
	Results []*Result
}

// Diverged reports whether more than one distinct final state was observed.
func (d *DivergenceReport) Diverged() bool { return len(d.States) > 1 }

// DistinctStates returns the number of distinct final memory states.
func (d *DivergenceReport) DistinctStates() int { return len(d.States) }

// TotalRaces sums the detector's reports over all seeds.
func (d *DivergenceReport) TotalRaces() int {
	total := 0
	for _, n := range d.RaceCounts {
		total += n
	}
	return total
}

// String summarises the sweep.
func (d *DivergenceReport) String() string {
	return fmt.Sprintf("seeds=%d distinct-states=%d diverged=%v races=%d",
		len(d.Seeds), d.DistinctStates(), d.Diverged(), d.TotalRaces())
}

// fingerprint hashes the final public memory of every node.
func fingerprint(mem [][]Word) string {
	h := sha256.New()
	var buf [8]byte
	for _, seg := range mem {
		for _, w := range seg {
			binary.BigEndian.PutUint64(buf[:], w)
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// ExploreSchedules runs the spec once per seed (the spec's own Seed is
// ignored) and compares final memory states. Latency jitter is forced on
// (default 30%) so seeds actually explore different interleavings.
//
// Seeds run serially, preserving this function's original contract: the
// spec's Setup and Program closures are never invoked concurrently, so
// they may share mutable state. Use ExploreSchedulesParallel to fan the
// sweep across workers when the closures are concurrency-safe.
func ExploreSchedules(spec RunSpec, seeds []int64) (*DivergenceReport, error) {
	return ExploreSchedulesParallel(spec, seeds, 1)
}

// ExploreSchedulesParallel is ExploreSchedules with the seeds explored
// concurrently on up to workers goroutines (workers as in Parallel: <= 0
// selects Parallelism(), 1 is serial). The report is assembled in seed
// order, so it is bit-identical for any worker count. The spec's Setup and
// Program closures run concurrently across seeds and must not share
// mutable state.
func ExploreSchedulesParallel(spec RunSpec, seeds []int64, workers int) (*DivergenceReport, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("dsmrace: no seeds to explore")
	}
	if spec.Jitter == 0 {
		spec.Jitter = 0.3
	}
	results, err := Parallel(len(seeds), workers, func(i int) (*Result, error) {
		s := spec
		s.Seed = seeds[i]
		res, err := Run(s)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seeds[i], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, fmt.Errorf("dsmrace: schedule sweep: %w", err)
	}
	rep := &DivergenceReport{States: make(map[string][]int64)}
	for i, res := range results {
		fp := fingerprint(res.Memory)
		rep.Seeds = append(rep.Seeds, seeds[i])
		rep.States[fp] = append(rep.States[fp], seeds[i])
		rep.RaceCounts = append(rep.RaceCounts, res.RaceCount)
		rep.Results = append(rep.Results, res)
	}
	for _, v := range rep.States {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	}
	return rep, nil
}

// SeedRange returns [0, n) as seeds for ExploreSchedules.
func SeedRange(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
