package dsmrace

import (
	"fmt"
	"testing"

	"dsmrace/internal/dsm"
	"dsmrace/internal/rdma"
	"dsmrace/internal/workload"
)

// runHomeBatch executes a workload with HomeSlotBatch set as given and
// returns the result plus the cluster (for batch counters / pool audits).
func runHomeBatch(t *testing.T, w workload.Workload, batch bool, kernels int) (*Result, *dsm.Cluster) {
	t.Helper()
	d, err := NewDetector("vw-exact")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rdma.DefaultConfig(d, nil)
	cfg.HomeSlotBatch = batch
	c, err := dsm.New(dsm.Config{Procs: w.Procs, Seed: 1, RDMA: cfg, Kernels: kernels, Label: w.Name})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(c); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunEach(w.Programs())
	if err != nil {
		t.Fatal(err)
	}
	if ferr := res.FirstError(); ferr != nil {
		t.Fatal(ferr)
	}
	if w.Check != nil {
		if err := w.Check(res); err != nil {
			t.Fatal(err)
		}
	}
	return res, c
}

// reportOps projects a run's reports onto their schedule-independent core:
// the (proc, seq) of each flagged operation, in detection order.
func reportOps(res *Result) []string {
	out := make([]string, 0, len(res.Races))
	for _, r := range res.Races {
		out = append(out, fmt.Sprintf("P%d#%d@a%d", r.Current.Proc, r.Current.Seq, r.Current.Area))
	}
	return out
}

// TestHomeSlotBatchDifferential is the micro-batching groundwork gate:
// batching same-slot same-area requests at the home must leave the race
// *verdicts* identical — same flagged (proc, seq) operations in the same
// order, zero staying zero on race-free workloads — and the memory image,
// message totals and completion semantics untouched, while virtual time
// improves on the colliding shape. Batching intentionally compresses
// timing, so durations (and report timestamps) may differ; verdicts may
// not.
func TestHomeSlotBatchDifferential(t *testing.T) {
	workloads := []workload.Workload{
		workload.LockstepAdders(12, 5),
		workload.Stencil1D(16, 8, 3),
		workload.ProducerConsumerChain(12, 3, 8, 3),
		workload.Migratory(16, 4, 8),
	}
	engaged := false
	for _, w := range workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			plain, _ := runHomeBatch(t, w, false, 0)
			batched, c := runHomeBatch(t, w, true, 0)
			if plain.RaceCount != batched.RaceCount {
				t.Fatalf("races diverged: plain=%d batched=%d", plain.RaceCount, batched.RaceCount)
			}
			if w.Profile == workload.RaceFree && plain.RaceCount != 0 {
				t.Fatalf("race-free workload signalled %d races", plain.RaceCount)
			}
			po, bo := reportOps(plain), reportOps(batched)
			for i := range po {
				if bo[i] != po[i] {
					t.Fatalf("verdict %d diverged: plain=%s batched=%s", i, po[i], bo[i])
				}
			}
			if plain.NetStats.TotalMsgs != batched.NetStats.TotalMsgs {
				t.Fatalf("batching changed message totals: %d vs %d",
					batched.NetStats.TotalMsgs, plain.NetStats.TotalMsgs)
			}
			if batched.Duration > plain.Duration {
				t.Fatalf("batching slowed virtual time: %v vs %v", batched.Duration, plain.Duration)
			}
			if n := c.System().BatchedOps(); n > 0 {
				engaged = true
				t.Logf("%s: %d ops batched, vns %d -> %d (-%.1f%%)", w.Name, n,
					plain.Duration, batched.Duration,
					100*float64(plain.Duration-batched.Duration)/float64(plain.Duration))
			}
		})
	}
	if !engaged {
		t.Fatal("no workload engaged the batcher; the differential proved nothing")
	}
}

// TestHomeSlotBatchMultiKernel pins that batching composes with the
// partitioned multi-kernel: a batched K=4 run is bit-identical to the
// batched single-kernel run.
func TestHomeSlotBatchMultiKernel(t *testing.T) {
	w := workload.LockstepAdders(12, 5)
	single, _ := runHomeBatch(t, w, true, 0)
	multi, c := runHomeBatch(t, w, true, 4)
	if multiFingerprintOf(single).runFingerprint != multiFingerprintOf(multi).runFingerprint {
		t.Fatalf("batched multi-kernel diverged:\n single %+v\n multi  %+v",
			multiFingerprintOf(single), multiFingerprintOf(multi))
	}
	for s := 0; s < c.System().PoolShards(); s++ {
		if b := c.System().PoolBalanceShard(s); b != (rdma.PoolBalance{}) {
			t.Fatalf("pool shard %d unbalanced: %+v", s, b)
		}
	}
	if c.System().BatchedOps() == 0 {
		t.Fatal("multi-kernel run never batched")
	}
}
