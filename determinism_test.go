package dsmrace

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"dsmrace/internal/dsm"
	"dsmrace/internal/rdma"
	"dsmrace/internal/workload"
)

// The fingerprints below were captured from the seed tree (before the
// zero-allocation hot-path rework) on the mixed random workload: 4 procs,
// 6 areas of 4 words, 60 ops/proc, 40% reads, a barrier every 25 ops. They
// pin down the full observable output of a fixed-seed run — race count,
// virtual duration, message/byte totals, and a hash over every race report
// string — so any refactor of the kernel, clock, detector or transport
// layers that shifts event ordering, clock values or report content by a
// single bit fails here.
//
// The "off" hash is sha256("") — no reports.
type goldenRun struct {
	det, proto string
	seed       int64
	races      int
	dur        int64
	msgs       uint64
	bytes      uint64
	hash       string
}

var goldenRuns = []goldenRun{
	{"vw", "piggyback", 1, 119, 188138, 496, 34656, "07834b20669405dd"},
	{"vw", "piggyback", 7, 140, 181858, 496, 34656, "71ade93075f9a312"},
	{"vw", "literal", 1, 176, 979270, 2842, 153520, "cb4bf7cb68f4b4f1"},
	{"vw", "literal", 7, 174, 983834, 2878, 156304, "8743fa64fa9f343f"},
	{"vw-exact", "piggyback", 1, 134, 188138, 496, 34656, "39031d86a4f32cf8"},
	{"vw-exact", "piggyback", 7, 149, 181858, 496, 34656, "fc196e6c7ede44cd"},
	{"vw-exact", "literal", 1, 176, 979270, 2842, 153520, "d5252a1d085236d2"},
	{"vw-exact", "literal", 7, 181, 983834, 2878, 156304, "635470c510258f71"},
	{"single-clock", "piggyback", 1, 139, 188138, 496, 34656, "039b0afdcfe38876"},
	{"single-clock", "piggyback", 7, 147, 181858, 496, 34656, "eb4da60be9f2e113"},
	{"single-clock", "literal", 1, 178, 979270, 2842, 153520, "37b2724587dd3e00"},
	{"single-clock", "literal", 7, 178, 983834, 2878, 156304, "244c0dedc0fb4185"},
	{"epoch", "piggyback", 1, 180, 192522, 496, 26496, "b0a6c550fb226343"},
	{"epoch", "piggyback", 7, 175, 180090, 496, 26496, "243cfcc91e9aad05"},
	{"lockset", "piggyback", 1, 6, 192522, 496, 26496, "744d88aa3f27a4dc"},
	{"lockset", "piggyback", 7, 6, 180090, 496, 26496, "271fe81e108033d6"},
	{"off", "piggyback", 1, 0, 184466, 496, 18336, "e3b0c44298fc1c14"},
	{"off", "piggyback", 7, 0, 178322, 496, 18336, "e3b0c44298fc1c14"},
}

func reportHash(res *Result) string {
	h := sha256.New()
	for _, r := range res.Races {
		fmt.Fprintln(h, r.String())
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// TestDeterminismGoldenFingerprints verifies that fixed-seed simulations are
// bit-identical to the seed tree: same race reports, same NetStats, same
// virtual durations.
func TestDeterminismGoldenFingerprints(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(fmt.Sprintf("%s/%s/seed=%d", g.det, g.proto, g.seed), func(t *testing.T) {
			d, err := NewDetector(g.det)
			if err != nil {
				t.Fatal(err)
			}
			w := workload.Random(workload.RandomSpec{
				Procs: 4, Areas: 6, AreaWords: 4, OpsPerProc: 60, ReadPercent: 40,
				BarrierEvery: 25,
			})
			cfg := rdma.DefaultConfig(d, nil)
			if g.proto == "literal" {
				cfg.Protocol = rdma.ProtocolLiteral
			}
			res, err := w.Run(dsm.Config{Seed: g.seed, RDMA: cfg})
			if err != nil {
				t.Fatal(err)
			}
			if res.RaceCount != g.races {
				t.Errorf("races = %d, want %d", res.RaceCount, g.races)
			}
			if int64(res.Duration) != g.dur {
				t.Errorf("duration = %d, want %d", int64(res.Duration), g.dur)
			}
			if res.NetStats.TotalMsgs != g.msgs {
				t.Errorf("msgs = %d, want %d", res.NetStats.TotalMsgs, g.msgs)
			}
			if res.NetStats.TotalBytes != g.bytes {
				t.Errorf("bytes = %d, want %d", res.NetStats.TotalBytes, g.bytes)
			}
			if got := reportHash(res); got != g.hash {
				t.Errorf("report hash = %s, want %s (race report content changed)", got, g.hash)
			}
		})
	}
}

// TestDeterminismWordGranularityCompressed pins the facade path with word
// granularity, delta-compressed clock accounting and latency jitter — the
// configuration exercising the CompressClocks decoder state and the
// word-level detection fan-out.
func TestDeterminismWordGranularityCompressed(t *testing.T) {
	res, err := Run(RunSpec{
		Procs: 3, Seed: 3, Detector: "vw", Granularity: "word", CompressClocks: true, Jitter: 0.2,
		Setup: func(c *Cluster) error { return c.Alloc("x", 0, 4) },
		Program: func(p *Proc) error {
			for i := 0; i < 30; i++ {
				if i%2 == 0 {
					if err := p.Put("x", i%4, Word(i)); err != nil {
						return err
					}
				} else if _, err := p.GetWord("x", (i+1)%4); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 34 {
		t.Errorf("races = %d, want 34", res.RaceCount)
	}
	if int64(res.Duration) != 100437 {
		t.Errorf("duration = %d, want 100437", int64(res.Duration))
	}
	if res.NetStats.TotalMsgs != 180 || res.NetStats.TotalBytes != 7406 {
		t.Errorf("netstats = %d msgs / %d bytes, want 180 / 7406",
			res.NetStats.TotalMsgs, res.NetStats.TotalBytes)
	}
	if got := reportHash(res); got != "5aa37228059a73db" {
		t.Errorf("report hash = %s, want 5aa37228059a73db", got)
	}
}

// TestSameSeedTwiceIsIdentical runs the same racy spec twice in-process and
// requires byte-identical outcomes — catching any nondeterminism introduced
// by pooling or buffer reuse (a recycled buffer leaking stale state would
// desync the two runs' reports).
func TestSameSeedTwiceIsIdentical(t *testing.T) {
	run := func() (*Result, error) {
		d, err := NewDetector("vw")
		if err != nil {
			return nil, err
		}
		w := workload.Random(workload.RandomSpec{
			Procs: 4, Areas: 3, AreaWords: 2, OpsPerProc: 40, ReadPercent: 50,
		})
		return w.Run(dsm.Config{Seed: 42, RDMA: rdma.DefaultConfig(d, nil)})
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.RaceCount != b.RaceCount || a.Duration != b.Duration ||
		a.NetStats != b.NetStats || reportHash(a) != reportHash(b) {
		t.Fatalf("two identical-seed runs diverged: races %d/%d dur %v/%v hash %s/%s",
			a.RaceCount, b.RaceCount, a.Duration, b.Duration, reportHash(a), reportHash(b))
	}
}
