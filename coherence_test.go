package dsmrace

import (
	"fmt"
	"testing"

	"dsmrace/internal/coherence"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
	"dsmrace/internal/verify"
	"dsmrace/internal/workload"
)

// runWorkloadCoh executes a freshly built workload under the named
// coherence protocol with tracing and the exact detector.
func runWorkloadCoh(t *testing.T, mk func() workload.Workload, coh string, seed int64) *dsm.Result {
	t.Helper()
	w := mk()
	d, err := NewDetector("vw-exact")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := coherence.FromName(coh)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rdma.DefaultConfig(d, nil)
	cfg.Coherence = cp
	res, err := w.Run(dsm.Config{Seed: seed, Trace: true, RDMA: cfg})
	if err != nil {
		t.Fatalf("%s under %s (seed %d): %v", w.Name, coh, seed, err)
	}
	return res
}

// pairSet renders a ground truth's racing pairs as a comparable set.
func pairSet(r *verify.Result) map[string]bool {
	out := make(map[string]bool, len(r.Pairs))
	for _, p := range r.Pairs {
		out[fmt.Sprintf("%v-%v@%d", p.A, p.B, p.Area)] = true
	}
	return out
}

// racyAreaSet reduces a ground truth to the set of areas with at least one
// racing pair.
func racyAreaSet(r *verify.Result) map[memory.AreaID]bool {
	out := make(map[memory.AreaID]bool)
	for _, p := range r.Pairs {
		out[p.Area] = true
	}
	return out
}

func diffSets(t *testing.T, label, aName, bName string, a, b map[string]bool) {
	t.Helper()
	for k := range a {
		if !b[k] {
			t.Errorf("%s: pair %s only under %s", label, k, aName)
		}
	}
	for k := range b {
		if !a[k] {
			t.Errorf("%s: pair %s only under %s", label, k, bName)
		}
	}
}

// deterministicWorkloads are the workloads whose per-process access stream
// is a function of the program alone (no kernel-RNG draws, no polling
// retries whose count depends on timing), so their sync-only ground truth
// is protocol-invariant and can be compared pair by pair.
var deterministicWorkloads = []struct {
	name string
	mk   func() workload.Workload
}{
	{"master-worker", func() workload.Workload { return workload.MasterWorker(4, 3) }},
	{"stencil1d", func() workload.Workload { return workload.Stencil1D(4, 4, 2) }},
	{"stencil1d-buggy", func() workload.Workload { return workload.StencilBuggy(4, 4, 2) }},
	{"migratory", func() workload.Workload { return workload.Migratory(4, 6, 8) }},
	{"prodchain", func() workload.Workload { return workload.ProducerConsumerChain(4, 4, 8, 3) }},
}

// TestProtocolEquivalenceGroundTruth is the protocol-equivalence property:
// for every workload with a schedule-independent access stream, the
// sync-only (protocol-invariant) ground-truth race set is identical under
// all four coherence protocols — write-update, write-invalidate, causal and
// MESI — on every seed. Message counts and timing may differ arbitrarily;
// the races a *program* contains must not.
func TestProtocolEquivalenceGroundTruth(t *testing.T) {
	for _, tc := range deterministicWorkloads {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				wu := runWorkloadCoh(t, tc.mk, "write-update", seed)
				tu := verify.GroundTruth(wu.Trace, verify.SyncOnlyOptions())
				for _, coh := range CoherenceNames()[1:] {
					res := runWorkloadCoh(t, tc.mk, coh, seed)
					tr := verify.GroundTruth(res.Trace, verify.SyncOnlyOptions())
					if tu.Accesses != tr.Accesses {
						t.Errorf("seed %d: access streams differ: %d under write-update vs %d under %s (workload not schedule-independent?)",
							seed, tu.Accesses, tr.Accesses, coh)
					}
					diffSets(t, fmt.Sprintf("seed %d", seed), "write-update", coh, pairSet(tu), pairSet(tr))
				}
			}
		})
	}
}

// TestProtocolEquivalenceRaceFree asserts that the race-free seed workloads
// stay exactly race-free — empty ground truth under the runtime's own
// absorption semantics, zero detector flags — under both protocols, even
// where retry loops make the access stream timing-dependent (the lock
// discipline orders every conflicting pair regardless of timing).
func TestProtocolEquivalenceRaceFree(t *testing.T) {
	mks := []struct {
		name string
		mk   func() workload.Workload
	}{
		{"prodcons", func() workload.Workload { return workload.ProducerConsumer(2, 3) }},
		{"random-locked", func() workload.Workload {
			return workload.Random(workload.RandomSpec{Procs: 4, Areas: 4, AreaWords: 2, OpsPerProc: 10, ReadPercent: 50, LockDiscipline: true})
		}},
		{"stencil1d", func() workload.Workload { return workload.Stencil1D(4, 4, 2) }},
		{"migratory", func() workload.Workload { return workload.Migratory(4, 6, 8) }},
		{"prodchain", func() workload.Workload { return workload.ProducerConsumerChain(4, 4, 8, 3) }},
	}
	for _, tc := range mks {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, coh := range CoherenceNames() {
				res := runWorkloadCoh(t, tc.mk, coh, 1)
				truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())
				if len(truth.Pairs) != 0 {
					t.Errorf("%s: %d true racing pairs, want 0", coh, len(truth.Pairs))
				}
				if res.RaceCount != 0 {
					t.Errorf("%s: detector flagged %d races on a race-free workload", coh, res.RaceCount)
				}
			}
		})
	}
}

// TestProtocolEquivalencePipeline: the pipeline's polling loops make the
// number of flag reads timing-dependent, so pair sets cannot be compared —
// but the *structure* is protocol-invariant: flag areas race, data areas do
// not, under either protocol. The data cells are ordered through the flags'
// reads-from edges, which is why this comparison uses the runtime's own
// absorption semantics: under write-invalidate a flag poll served from a
// cached copy absorbs the copy's write clock, which a valid copy guarantees
// is the area's current one — the same edge a remote poll would get.
func TestProtocolEquivalencePipeline(t *testing.T) {
	mk := func() workload.Workload { return workload.Pipeline(4, 2) }
	wu := runWorkloadCoh(t, mk, "write-update", 1)
	wi := runWorkloadCoh(t, mk, "write-invalidate", 1)
	au := racyAreaSet(verify.GroundTruth(wu.Trace, verify.DefaultOptions()))
	ai := racyAreaSet(verify.GroundTruth(wi.Trace, verify.DefaultOptions()))
	if len(au) != len(ai) {
		t.Fatalf("racy area sets differ: %v vs %v", au, ai)
	}
	for a := range au {
		if !ai[a] {
			t.Errorf("area %d racy only under write-update", a)
		}
	}
	// 4 flag areas race (polled), 4 data areas are ordered through the
	// flags' reads-from edges.
	if len(au) != 4 {
		t.Errorf("racy areas = %d, want 4 (the flag cells)", len(au))
	}
}

// TestProtocolEquivalenceScheduleSensitive covers the workloads whose
// access stream depends on kernel-RNG interleaving (so even access counts
// differ across protocols): the racy ones must be caught, and the benign
// ones must still produce correct results, under both protocols.
func TestProtocolEquivalenceScheduleSensitive(t *testing.T) {
	mks := []struct {
		name string
		mk   func() workload.Workload
	}{
		{"random", func() workload.Workload {
			return workload.Random(workload.RandomSpec{Procs: 4, Areas: 4, AreaWords: 2, OpsPerProc: 20, ReadPercent: 50})
		}},
		{"histogram", func() workload.Workload { return workload.Histogram(4, 4, 5) }},
		{"histogram-racy", func() workload.Workload { return workload.HistogramRacy(4, 4, 5) }},
		{"master-worker", func() workload.Workload { return workload.MasterWorker(4, 3) }},
	}
	for _, tc := range mks {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, coh := range CoherenceNames() {
				res := runWorkloadCoh(t, tc.mk, coh, 1)
				truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())
				w := tc.mk()
				if w.Profile != workload.RaceFree && len(truth.Pairs) == 0 {
					t.Errorf("%s: racy workload has empty ground truth", coh)
				}
			}
		})
	}
}

// TestWriteInvalidateMechanics exercises the directory state machine
// end-to-end on a hand-built program: fetch on miss, hit on re-read,
// invalidation on a third party's write, re-fetch of fresh data.
func TestWriteInvalidateMechanics(t *testing.T) {
	reads := make(chan Word, 3)
	res, err := Run(RunSpec{
		Procs:     3,
		Seed:      1,
		Detector:  "vw-exact",
		Coherence: "write-invalidate",
		Setup:     func(c *Cluster) error { return c.Alloc("x", 0, 4) },
		Programs: []Program{
			func(p *Proc) error { // home: seed, then wait out the others
				if err := p.Put("x", 0, 10, 11, 12, 13); err != nil {
					return err
				}
				p.Barrier()
				p.Barrier()
				p.Barrier()
				return nil
			},
			func(p *Proc) error { // reader: miss, hit, invalidated re-fetch
				p.Barrier()
				v, err := p.GetWord("x", 1) // miss: whole-area fetch
				if err != nil {
					return err
				}
				reads <- v
				v, err = p.GetWord("x", 2) // hit: no messages
				if err != nil {
					return err
				}
				reads <- v
				p.Barrier() // writer runs between these barriers
				p.Barrier()
				v, err = p.GetWord("x", 2) // invalidated: fetch fresh
				if err != nil {
					return err
				}
				reads <- v
				return nil
			},
			func(p *Proc) error { // writer: invalidates the reader's copy
				p.Barrier()
				p.Barrier()
				if err := p.Put("x", 2, 99); err != nil {
					return err
				}
				p.Barrier()
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := []Word{<-reads, <-reads, <-reads}; got[0] != 11 || got[1] != 12 || got[2] != 99 {
		t.Fatalf("reads = %v, want [11 12 99]", got)
	}
	if res.Coherence.Hits != 1 {
		t.Errorf("hits = %d, want 1", res.Coherence.Hits)
	}
	if res.Coherence.Fetches != 2 {
		t.Errorf("fetches = %d, want 2", res.Coherence.Fetches)
	}
	if res.Coherence.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", res.Coherence.Invalidations)
	}
}

// TestWriteInvalidateWordGranularityCompressed exercises the
// write-invalidate transport composed with word-granularity detection
// states and delta-compressed clock accounting (the fetch reply's clock
// rides the same logical channel as get replies), plus latency jitter —
// and requires two identical-seed runs to agree bit for bit.
func TestWriteInvalidateWordGranularityCompressed(t *testing.T) {
	run := func() *Result {
		res, err := Run(RunSpec{
			Procs: 3, Seed: 3, Detector: "vw", Coherence: "write-invalidate",
			Granularity: "word", CompressClocks: true, Jitter: 0.2,
			Setup: func(c *Cluster) error { return c.Alloc("x", 0, 4) },
			Program: func(p *Proc) error {
				for i := 0; i < 30; i++ {
					if i%2 == 0 {
						if err := p.Put("x", i%4, Word(i)); err != nil {
							return err
						}
					} else if _, err := p.GetWord("x", (i+1)%4); err != nil {
						return err
					}
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.RaceCount != b.RaceCount || a.Duration != b.Duration ||
		a.NetStats != b.NetStats || a.Coherence != b.Coherence ||
		reportHash(a) != reportHash(b) {
		t.Fatalf("identical-seed write-invalidate runs diverged: %d/%d races, %v/%v, coh %+v/%+v",
			a.RaceCount, b.RaceCount, a.Duration, b.Duration, a.Coherence, b.Coherence)
	}
	if a.Coherence.Fetches == 0 {
		t.Error("no fetches — write-invalidate path not exercised")
	}
}

// TestCoherenceSpecValidation pins the facade's selector handling.
func TestCoherenceSpecValidation(t *testing.T) {
	base := RunSpec{
		Procs:   2,
		Setup:   func(c *Cluster) error { return c.Alloc("x", 0, 1) },
		Program: func(p *Proc) error { return nil },
	}
	bad := base
	bad.Coherence = "msi"
	if _, err := Run(bad); err == nil {
		t.Error("unknown coherence name accepted")
	}
	lit := base
	lit.Coherence = "write-invalidate"
	lit.Protocol = "literal"
	lit.Detector = "vw"
	if _, err := Run(lit); err == nil {
		t.Error("write-invalidate + literal wire protocol accepted")
	}
	for _, name := range []string{"", "wu", "write-update", "wi", "write-invalidate", "causal", "mesi"} {
		ok := base
		ok.Coherence = name
		if _, err := Run(ok); err != nil {
			t.Errorf("coherence %q rejected: %v", name, err)
		}
	}
}

// TestCoherenceDivergenceDirections pins the headline protocol trade-off on
// the two ownership-sensitive workloads: migration favours write-update,
// repeated consumption favours write-invalidate. The divergence must be
// measurable (>10% in message count), in opposite directions.
func TestCoherenceDivergenceDirections(t *testing.T) {
	msgs := func(mk func() workload.Workload, coh string) float64 {
		res := runWorkloadCoh(t, mk, coh, 1)
		return float64(res.NetStats.TotalMsgs)
	}
	mig := func() workload.Workload { return workload.Migratory(4, 8, 8) }
	chain := func() workload.Workload { return workload.ProducerConsumerChain(4, 6, 8, 4) }
	if wu, wi := msgs(mig, "write-update"), msgs(mig, "write-invalidate"); wi < wu*1.1 {
		t.Errorf("migratory: write-invalidate %v msgs vs write-update %v, want ≥10%% more", wi, wu)
	}
	if wu, wi := msgs(chain, "write-update"), msgs(chain, "write-invalidate"); wi > wu*0.9 {
		t.Errorf("prodchain: write-invalidate %v msgs vs write-update %v, want ≥10%% fewer", wi, wu)
	}
}
