// Package dsmrace is a distributed-shared-memory simulator with built-in
// race-condition detection, reproducing "A Model for Coherent Distributed
// Memory For Race Condition Detection" (Butelle & Coti, IPPS 2011,
// arXiv:1101.4193).
//
// The library models clusters of processes with private/public memory
// segments joined by an RDMA-capable interconnect (one-sided put/get, OS
// bypass, NIC locks) under a deterministic discrete-event simulation.
// The paper's vector-clock race detector — a general-purpose clock V and a
// write clock W per shared memory area — runs inside the communication
// library, alongside baseline detectors (single-clock, lockset, epoch) and
// an offline exact ground-truth verifier.
//
// Quick start:
//
//	res, err := dsmrace.Run(dsmrace.RunSpec{
//		Procs:    4,
//		Detector: "vw-exact",
//		Setup: func(c *dsmrace.Cluster) error {
//			return c.Alloc("x", 0, 1)
//		},
//		Program: func(p *dsmrace.Proc) error {
//			return p.Put("x", 0, dsmrace.Word(p.ID()))
//		},
//	})
//	// res.Races holds the signalled race reports.
package dsmrace

import (
	"fmt"

	"dsmrace/internal/baseline"
	"dsmrace/internal/coherence"
	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/fault"
	"dsmrace/internal/mcheck"
	"dsmrace/internal/network"
	"dsmrace/internal/rdma"
	"dsmrace/internal/sim"
	"dsmrace/internal/trace"
	"dsmrace/internal/verify"
)

// Re-exported core types: the facade keeps downstream imports to one path.
type (
	// Cluster is a configured DSM system; allocate variables, then run.
	Cluster = dsm.Cluster
	// Proc is a process handle inside a program.
	Proc = dsm.Proc
	// Program is one process's code.
	Program = dsm.Program
	// Result summarises a run.
	Result = dsm.Result
	// Report is one signalled race condition.
	Report = core.Report
	// Word is the unit of shared storage.
	Word = uint64
	// Trace is a recorded execution.
	Trace = trace.Trace
	// GroundTruth is the exact race set of a trace.
	GroundTruth = verify.Result
	// Score is a detector-vs-truth confusion summary.
	Score = verify.Score
	// Time is virtual simulation time in nanoseconds.
	Time = sim.Time
	// MultiKernelStats counts the window/barrier work of a Kernels>1 run
	// (windows, adaptive extensions, pipelined replays, merged records);
	// see Result.WindowStats.
	MultiKernelStats = sim.MultiKernelStats
	// CoherenceStats counts replica events (hits, fetches, invalidations)
	// of a run — all zero under write-update, which keeps no replicas.
	CoherenceStats = coherence.Stats
	// FaultSchedule is a deterministic fault-injection plan (see
	// RunSpec.Faults).
	FaultSchedule = fault.Schedule
	// FaultEvent is one timed fault action (link cut/heal, crash/restart).
	FaultEvent = fault.Event
	// FaultOp names a fault action.
	FaultOp = fault.Op
	// DropRule is a per-message-kind drop probability.
	DropRule = fault.DropRule
)

// Fault actions and wildcards re-exported for building schedules.
const (
	FaultCutLink  = fault.CutLink
	FaultHealLink = fault.HealLink
	FaultCrash    = fault.Crash
	FaultRestart  = fault.Restart
	FaultAnyNode  = fault.AnyNode
	FaultAnyKind  = fault.AnyKind
)

// Virtual time units for building fault schedules and reading durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// ErrUnreachable is the typed error surfaced by operations whose retry
// budget expired against a crashed or partitioned peer. Test with
// errors.Is(err, dsmrace.ErrUnreachable).
var ErrUnreachable = rdma.ErrUnreachable

// Reduction operators re-exported for collective calls.
const (
	OpSum  = dsm.OpSum
	OpMax  = dsm.OpMax
	OpMin  = dsm.OpMin
	OpProd = dsm.OpProd
)

// DetectorNames lists the accepted RunSpec.Detector values.
func DetectorNames() []string {
	return []string{"vw", "vw-exact", "single-clock", "lockset", "epoch", "off"}
}

// CoherenceNames lists the accepted RunSpec.Coherence values.
func CoherenceNames() []string { return coherence.Names() }

// NewDetector builds a detector by name ("off" and "" yield nil: detection
// disabled).
func NewDetector(name string) (core.Detector, error) {
	switch name {
	case "vw":
		return core.NewVWDetector(), nil
	case "vw-exact", "":
		if name == "" {
			return nil, nil
		}
		return core.NewExactVWDetector(), nil
	case "single-clock":
		return baseline.NewSingleClock(), nil
	case "lockset":
		return baseline.NewLockset(), nil
	case "epoch":
		return baseline.NewEpoch(), nil
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("dsmrace: unknown detector %q (want one of %v)", name, DetectorNames())
	}
}

// RunSpec is the high-level run description.
type RunSpec struct {
	// Procs is the number of processes (required).
	Procs int
	// Seed selects the schedule; identical seeds reproduce identical runs.
	Seed int64
	// Detector names the race detector: "vw" (paper), "vw-exact",
	// "single-clock", "lockset", "epoch" or "off"/"" (disabled).
	Detector string
	// Protocol is "piggyback" (default) or "literal" (the paper's
	// Algorithms 1–5 message by message). This is the *wire* protocol —
	// how clocks travel with an access; Coherence below is the *coherence*
	// protocol — which copies of the data exist at all.
	Protocol string
	// Coherence selects the coherence protocol: "write-update" (default;
	// the single-copy home-based model of the paper), "write-invalidate"
	// (home-based directory, whole-area read caching, acknowledged
	// invalidations), "causal" (Cohen-style causal memory: versioned
	// asynchronous updates carrying vector-clock dependencies, causally
	// consistent but deliberately not sequentially consistent) or "mesi"
	// (four-state M/E/S/I caching with exclusive grants, silent E→M
	// upgrades and directory-tracked recalls). Every caching protocol
	// requires the piggyback wire protocol.
	Coherence string
	// Granularity is "area" (default; one clock pair per shared variable),
	// "node" (the figures' coarse model) or "word" (no clock false
	// sharing, maximum storage; piggyback protocol only).
	Granularity string
	// Latency overrides the interconnect model (default: InfiniBand-class).
	Latency network.LatencyModel
	// Jitter adds ±fraction latency noise, letting different seeds explore
	// different interleavings.
	Jitter float64
	// CompressClocks transmits clock deltas instead of full vectors (wire
	// byte accounting only; verdicts unaffected).
	CompressClocks bool
	// Kernels requests partitioned multi-kernel execution: the cluster's
	// nodes split across this many kernel shards running in parallel under
	// conservative time windows, bit-identical to the single-kernel run
	// (0/1 = single kernel). Requests degrade back to one kernel — recorded
	// in Result.Kernels/KernelNote — when the run cannot be parallelised
	// deterministically (tracing, or a latency model without a provable
	// lookahead; note RunSpec programs count as serial-only when they use
	// Proc.Rand — declare via SerialOnly).
	Kernels int
	// Partition selects the node→shard policy: "blocks" (locality-aware,
	// default) or "round-robin".
	Partition string
	// LocalityGroup hints the affinity-group size for the blocks policy.
	LocalityGroup int
	// WindowExtension caps adaptive window extension on a Kernels>1 run
	// (0 default cap, 1 disables — every window is one lookahead). See
	// dsm.Config.WindowExtension; Result.WindowStats reports what fired.
	WindowExtension int
	// PipelinedReplay selects pipelined barrier replay on a Kernels>1 run:
	// 0 auto, 1 forced on, -1 forced off. Deterministic at any setting.
	PipelinedReplay int
	// SerialOnly declares the programs draw from Proc.Rand (or share Go
	// state across processes); such runs execute on one kernel.
	SerialOnly bool
	// Faults installs a deterministic fault-injection schedule: timed link
	// cuts/heals, node crashes/restarts, and per-kind message-drop
	// probabilities, replayed bit-identically for a given Seed at any
	// kernel count. Operations against unreachable peers retry with
	// exponential backoff and ultimately fail with ErrUnreachable. Nil runs
	// fault-free; incompatible with the legacy initiator and home slot
	// batching (see internal/fault's package docs for the full model).
	Faults *FaultSchedule
	// Trace enables execution tracing (required for GroundTruthOf).
	Trace bool
	// Label tags the run.
	Label string
	// Setup allocates shared variables before the run.
	Setup func(c *Cluster) error
	// Program runs SPMD on every process (exclusive with Programs).
	Program Program
	// Programs supplies one program per process.
	Programs []Program
}

// build constructs the cluster and program list for the spec.
func (s RunSpec) build() (*Cluster, []Program, error) {
	det, err := NewDetector(s.Detector)
	if err != nil {
		return nil, nil, err
	}
	rcfg := rdma.DefaultConfig(det, nil)
	switch s.Protocol {
	case "", "piggyback":
	case "literal":
		rcfg.Protocol = rdma.ProtocolLiteral
	default:
		return nil, nil, fmt.Errorf("dsmrace: unknown protocol %q", s.Protocol)
	}
	coh, err := coherence.FromName(s.Coherence)
	if err != nil {
		return nil, nil, fmt.Errorf("dsmrace: %w", err)
	}
	if coh.CachesRemoteReads() && rcfg.Protocol == rdma.ProtocolLiteral {
		return nil, nil, fmt.Errorf("dsmrace: coherence %q requires the piggyback wire protocol", s.Coherence)
	}
	if rcfg.Protocol == rdma.ProtocolLiteral && det != nil {
		// Algorithms 1–2 fetch and write back the stored clocks, which a
		// non-clock detector cannot serve (rdma.NewSystem would panic).
		if _, ok := det.NewAreaState(1).(core.ClockAccessor); !ok {
			return nil, nil, fmt.Errorf("dsmrace: detector %q has no clocks; the literal protocol requires a clock-based detector", s.Detector)
		}
	}
	rcfg.Coherence = coh
	switch s.Granularity {
	case "", "area":
	case "node":
		rcfg.Granularity = rdma.GranularityNode
	case "word":
		rcfg.Granularity = rdma.GranularityWord
	default:
		return nil, nil, fmt.Errorf("dsmrace: unknown granularity %q", s.Granularity)
	}
	if rcfg.Granularity == rdma.GranularityWord && rcfg.Protocol == rdma.ProtocolLiteral {
		return nil, nil, fmt.Errorf("dsmrace: word granularity requires the piggyback protocol")
	}
	rcfg.CompressClocks = s.CompressClocks
	lat := s.Latency
	if lat == nil {
		lat = network.DefaultIB()
	}
	if s.Jitter > 0 {
		lat = network.Jitter{Base: lat, Frac: s.Jitter}
	}
	c, err := dsm.New(dsm.Config{
		Procs:           s.Procs,
		Seed:            s.Seed,
		Latency:         lat,
		RDMA:            rcfg,
		Trace:           s.Trace,
		Label:           s.Label,
		Kernels:         s.Kernels,
		Partition:       s.Partition,
		LocalityGroup:   s.LocalityGroup,
		WindowExtension: s.WindowExtension,
		PipelinedReplay: s.PipelinedReplay,
		SerialOnly:      s.SerialOnly,
		Faults:          s.Faults,
	})
	if err != nil {
		return nil, nil, err
	}
	if s.Setup != nil {
		if err := s.Setup(c); err != nil {
			return nil, nil, err
		}
	}
	progs := s.Programs
	if progs == nil {
		if s.Program == nil {
			return nil, nil, fmt.Errorf("dsmrace: RunSpec needs Program or Programs")
		}
		progs = make([]Program, s.Procs)
		for i := range progs {
			progs[i] = s.Program
		}
	}
	if len(progs) != s.Procs {
		return nil, nil, fmt.Errorf("dsmrace: %d programs for %d procs", len(progs), s.Procs)
	}
	return c, progs, nil
}

// Run executes the spec and returns the result.
func Run(spec RunSpec) (*Result, error) {
	c, progs, err := spec.build()
	if err != nil {
		return nil, err
	}
	res, err := c.RunEach(progs)
	if err != nil {
		return res, err
	}
	return res, res.FirstError()
}

// Model-checker types re-exported from internal/mcheck: exhaustive
// schedule enumeration of tiny litmus configurations with memory-model
// axiom checking (see the internal/mcheck package docs for the model).
type (
	// McheckOutcome summarises one exhaustive exploration: schedule and
	// dedup counts plus per-axiom verdicts.
	McheckOutcome = mcheck.Outcome
	// McheckLitmus is one tiny configuration to explore.
	McheckLitmus = mcheck.Litmus
	// McheckLevel is a memory-consistency level (coherent < causal < SC).
	McheckLevel = mcheck.Level
)

// Memory-consistency levels re-exported for reading McheckOutcome verdicts.
const (
	McheckLevelNone     = mcheck.LevelNone
	McheckLevelCoherent = mcheck.LevelCoherent
	McheckLevelCausal   = mcheck.LevelCausal
	McheckLevelSC       = mcheck.LevelSC
)

// McheckLitmusNames lists the canned litmus configurations.
func McheckLitmusNames() []string {
	lits := mcheck.Litmuses()
	names := make([]string, len(lits))
	for i, l := range lits {
		names[i] = l.Name
	}
	return names
}

// mcheckProtocol resolves a protocol selector for Mcheck: a stock coherence
// name (per CoherenceNames) or a seeded mutation name (per
// coherence.MutantNames) for oracle-validation runs.
func mcheckProtocol(name string) (coherence.Protocol, error) {
	p, err := coherence.FromName(name)
	if err == nil {
		return p, nil
	}
	if m, merr := coherence.NewMutant(name); merr == nil {
		return m, nil
	}
	return nil, fmt.Errorf("dsmrace: unknown mcheck protocol %q (want one of %v or a mutation %v)",
		name, CoherenceNames(), coherence.MutantNames())
}

// Mcheck exhaustively enumerates every distinguishable schedule of the named
// litmus under the named coherence protocol (stock or seeded-mutation) and
// classifies each against the SC, causal and coherence axioms. maxRuns <= 0
// uses the default budget; exceeding the budget is an error, never a silent
// truncation.
func Mcheck(litmus, protocol string, maxRuns int) (*McheckOutcome, error) {
	lit, err := mcheck.LitmusByName(litmus)
	if err != nil {
		return nil, err
	}
	p, err := mcheckProtocol(protocol)
	if err != nil {
		return nil, err
	}
	cfg := mcheck.Config{Litmus: lit, Protocol: p}
	if maxRuns > 0 {
		cfg.MaxRuns = maxRuns
	}
	return mcheck.Explore(cfg)
}

// McheckOptions parameterises McheckExplore beyond the Mcheck defaults.
type McheckOptions struct {
	// MaxRuns bounds runs attempted (not unique schedules); <= 0 uses the
	// default budget. Exceeding it is an error, never a silent truncation.
	MaxRuns int
	// POR enables dynamic partial-order reduction and state-fingerprint
	// memoization: far fewer runs, provably identical unique-terminal-state
	// set and verdicts.
	POR bool
	// Workers sets the exploration pool size (0 = GOMAXPROCS). The outcome
	// is bit-identical for every value.
	Workers int
}

// McheckExplore is Mcheck with the exploration knobs exposed: partial-order
// reduction, worker-pool size, and the run budget.
func McheckExplore(litmus, protocol string, opt McheckOptions) (*McheckOutcome, error) {
	lit, err := mcheck.LitmusByName(litmus)
	if err != nil {
		return nil, err
	}
	p, err := mcheckProtocol(protocol)
	if err != nil {
		return nil, err
	}
	cfg := mcheck.Config{Litmus: lit, Protocol: p, POR: opt.POR, Workers: opt.Workers}
	if opt.MaxRuns > 0 {
		cfg.MaxRuns = opt.MaxRuns
	}
	return mcheck.Explore(cfg)
}

// GroundTruthOf computes the exact race set of a traced run.
func GroundTruthOf(res *Result) (*GroundTruth, error) {
	if res.Trace == nil {
		return nil, fmt.Errorf("dsmrace: run was not traced (set RunSpec.Trace)")
	}
	return verify.GroundTruth(res.Trace, verify.DefaultOptions()), nil
}

// ScoreDetector compares a run's reports against exact ground truth.
func ScoreDetector(res *Result, name string) (Score, error) {
	truth, err := GroundTruthOf(res)
	if err != nil {
		return Score{}, err
	}
	return verify.ScoreReports(truth, name, res.Races), nil
}
