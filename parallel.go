package dsmrace

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel experiment driver. One simulation is inherently sequential —
// the discrete-event kernel serialises everything, which is what makes runs
// reproducible — but an *experiment* is usually many independent
// simulations (a seed sweep, a detector grid, a protocol comparison), and
// those parallelise perfectly: each trial owns its kernel, network, memory
// and RNG, and shares nothing.
//
// Determinism is preserved by construction: trial i's inputs depend only on
// i (per-trial seeds, per-trial workload builders), and results are merged
// by trial index, never by completion order. The merged output of a fixed
// trial list is therefore bit-identical regardless of GOMAXPROCS or worker
// count — asserted by TestParallelMergeDeterminism.

// Parallelism returns the default worker count for Parallel: GOMAXPROCS,
// i.e. one simulation per available OS thread.
func Parallelism() int { return runtime.GOMAXPROCS(0) }

// ParallelismFor returns the worker count for trials that each run on
// kernelsPerTrial kernel shards, keeping trials × shards within the one
// GOMAXPROCS budget: a K-shard trial occupies K threads during its windows,
// so the driver admits GOMAXPROCS/K concurrent trials (at least one).
func ParallelismFor(kernelsPerTrial int) int {
	if kernelsPerTrial < 1 {
		kernelsPerTrial = 1
	}
	w := runtime.GOMAXPROCS(0) / kernelsPerTrial
	if w < 1 {
		w = 1
	}
	return w
}

// Parallel runs trial(i) for every i in [0, n) on up to workers concurrent
// goroutines (workers <= 0 selects Parallelism()) and returns the results
// in trial order. The error returned is the lowest-indexed trial's error —
// also independent of scheduling — with every completed trial's result
// still filled in.
//
// trial must be safe for concurrent invocation: build anything mutable
// (workloads, clusters, specs with closures over shared state) inside the
// trial function, not outside it.
func Parallel[T any](n, workers int, trial func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		// Serial fast path: no goroutines, same merged output.
		for i := 0; i < n; i++ {
			out[i], errs[i] = trial(i)
		}
		return out, firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = trial(i)
			}
		}()
	}
	wg.Wait()
	return out, firstError(errs)
}

// firstError returns the lowest-indexed non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunMany executes every spec with Run concurrently (workers as in
// Parallel) and returns the results in spec order. Each spec's Setup and
// Program closures may run concurrently with every other spec's; specs
// sharing mutable state must be built per-trial via Parallel instead.
// When workers defaults (<= 0) and specs request multi-kernel execution,
// the admitted trial count is budgeted by the largest shard request
// (ParallelismFor), keeping trials × shards within GOMAXPROCS.
func RunMany(specs []RunSpec, workers int) ([]*Result, error) {
	if workers <= 0 {
		maxK := 1
		for _, s := range specs {
			if s.Kernels > maxK {
				maxK = s.Kernels
			}
		}
		workers = ParallelismFor(maxK)
	}
	return Parallel(len(specs), workers, func(i int) (*Result, error) {
		return Run(specs[i])
	})
}
