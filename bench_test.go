// Benchmarks regenerating the paper's evaluation artefacts. Each
// BenchmarkE_* family corresponds to one experiment in EXPERIMENTS.md;
// custom metrics report the *virtual* quantities the paper reasons about
// (messages, bytes, virtual latency) next to the host-side ns/op.
package dsmrace

import (
	"fmt"
	"strings"
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
	"dsmrace/internal/vclock"
	"dsmrace/internal/workload"
)

// BenchmarkE_F2_Put measures the put primitive of Fig. 2 (detection off).
func BenchmarkE_F2_Put(b *testing.B) { benchOps(b, "off", "", 1, false) }

// BenchmarkE_F2_Get measures the get primitive of Fig. 2 (detection off).
func BenchmarkE_F2_Get(b *testing.B) { benchOps(b, "off", "", 1, true) }

// BenchmarkE_F4_ConcurrentReaders measures n readers hammering one
// initialised variable under the paper detector — all benign (Fig. 4).
func BenchmarkE_F4_ConcurrentReaders(b *testing.B) {
	spec := RunSpec{
		Procs:    4,
		Seed:     1,
		Detector: "vw-exact",
		Setup:    func(c *Cluster) error { return c.Alloc("a", 1, 1) },
	}
	n := b.N
	spec.Program = func(p *Proc) error {
		if p.ID() == 1 {
			if err := p.Put("a", 0, 7); err != nil {
				return err
			}
		}
		p.Barrier()
		for i := 0; i < n; i++ {
			if _, err := p.GetWord("a", 0); err != nil {
				return err
			}
		}
		return nil
	}
	b.ResetTimer()
	res, err := Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if res.RaceCount != 0 {
		b.Fatalf("benign reads raced: %d", res.RaceCount)
	}
	b.ReportMetric(0, "races")
}

// BenchmarkE_T1_ClockStorage reports detection-state bytes per area as the
// process count grows (§IV-C: clocks cannot be smaller than n; §IV-D: the
// W clock doubles memory).
func BenchmarkE_T1_ClockStorage(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				st := core.NewVWDetector().NewAreaState(n)
				bytes = st.StorageBytes()
			}
			b.ReportMetric(float64(bytes), "B/area")
		})
	}
}

// BenchmarkE_T2_Protocols contrasts message counts per put: detection off,
// piggyback, and the paper-literal Algorithms 1–5.
func BenchmarkE_T2_Protocols(b *testing.B) {
	for _, tc := range []struct{ det, proto string }{
		{"off", ""},
		{"vw", "piggyback"},
		{"vw", "literal"},
	} {
		name := tc.det
		if tc.det != "off" {
			name = tc.proto
		}
		b.Run(name, func(b *testing.B) { benchOps(b, tc.det, tc.proto, 1, false) })
	}
}

// BenchmarkE_T4_Throughput measures the random workload with detection on
// and off across cluster sizes (§V-A: debugging-scale overhead).
func BenchmarkE_T4_Throughput(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		for _, det := range []string{"off", "vw-exact"} {
			b.Run(fmt.Sprintf("n=%d/det=%s", n, det), func(b *testing.B) {
				benchThroughput(b, n, det)
			})
		}
	}
}

// BenchmarkE_Scale runs the small end of the E_Scale cluster-size sweep
// (the full n≤512 sweep lives in cmd/bench, which gives the family its own
// benchtime — the large-n entries are orders of magnitude more work per
// iteration than any other family).
func BenchmarkE_Scale(b *testing.B) {
	for _, wl := range scaleBenchWorkloads {
		for _, n := range []int{16, 64} {
			wl, n := wl, n
			b.Run(fmt.Sprintf("%s/n=%d", wl.name, n), func(b *testing.B) {
				benchScale(b, n, wl.mk)
			})
		}
	}
}

// BenchmarkE_Partition runs the small end of the E_Partition multi-kernel
// sweep (the full n≤512 × K≤8 grid lives in cmd/bench with its own
// benchtime): the communication-local shapes at n=64 across shard counts.
// The runs are bit-identical across K (gated by the multi-kernel
// differential); ns/op is the only axis that moves.
func BenchmarkE_Partition(b *testing.B) {
	for _, wl := range scaleBenchWorkloads {
		for _, k := range []int{1, 4} {
			wl, k := wl, k
			b.Run(fmt.Sprintf("%s/n=64/k=%d", wl.name, k), func(b *testing.B) {
				benchPartition(b, 64, k, wl.mk)
			})
		}
	}
}

// BenchmarkE_HomeBatch is the home slot-batching ablation pair on the
// colliding lockstep shape; msgs/op must not move between the rows, vns/op
// records the coalesced NICDelays.
func BenchmarkE_HomeBatch(b *testing.B) {
	for _, batch := range []bool{false, true} {
		batch := batch
		name := "off"
		if batch {
			name = "on"
		}
		b.Run("lockstep-barrier/n=64/batch="+name, func(b *testing.B) {
			benchHomeBatch(b, 64, batch)
		})
	}
}

// BenchmarkE_Fault runs the fault-layer family: the armed-idle pair whose
// faults=off vs faults=armed ns/op delta is the zero-fault tax (a few
// percent on uniform/n=64, within host noise), and the hostile rows metering
// sustained loss and a
// crash/restart mid-run.
func BenchmarkE_Fault(b *testing.B) {
	for _, spec := range FaultBenchmarks() {
		spec := spec
		b.Run(strings.TrimPrefix(spec.Name, "E_Fault/"), spec.F)
	}
}

// BenchmarkE_Mcheck runs the sub-second model-checker exploration rows: one
// iteration is one whole exploration, and the metrics read as throughput
// (sched/s) and reduction (runs/op, pruned/op, dedup%). The rows whose full
// or reduced enumerations take seconds stay in cmd/bench's -mcheck-benchtime
// family, like the large E_Scale entries.
func BenchmarkE_Mcheck(b *testing.B) {
	for _, spec := range McheckBenchmarks() {
		spec := spec
		switch spec.Name {
		case "E_Mcheck/iriw/mesi/por", "E_Mcheck/sb3/mesi/por",
			"E_Mcheck/sb/write-invalidate/full", "E_Mcheck/iriw/write-update/full":
			continue // whole-second iterations; cmd/bench times these
		}
		b.Run(strings.TrimPrefix(spec.Name, "E_Mcheck/"), spec.F)
	}
}

// BenchmarkE_Coherence contrasts the coherence protocols on the
// ownership-sensitive workloads (E-T12): migration favours write-update,
// repeated consumption favours write-invalidate; compare msgs/op.
func BenchmarkE_Coherence(b *testing.B) {
	for _, wl := range coherenceBenchWorkloads {
		for _, coh := range CoherenceNames() {
			wl, coh := wl, coh
			b.Run(fmt.Sprintf("%s/%s", wl.name, coh), func(b *testing.B) {
				benchCoherence(b, coh, wl.mk)
			})
		}
	}
}

// BenchmarkE_T6_ReadRatio sweeps the read fraction and reports the race
// flags per operation for the paper detector versus the single-clock
// baseline (the false positives W eliminates, §IV-D).
func BenchmarkE_T6_ReadRatio(b *testing.B) {
	for _, readPct := range []int{0, 50, 90, 100} {
		for _, det := range []string{"vw-exact", "single-clock"} {
			b.Run(fmt.Sprintf("read=%d/det=%s", readPct, det), func(b *testing.B) {
				d, err := NewDetector(det)
				if err != nil {
					b.Fatal(err)
				}
				w := workload.Random(workload.RandomSpec{
					Procs: 4, Areas: 4, AreaWords: 2,
					OpsPerProc: b.N, ReadPercent: readPct,
				})
				b.ResetTimer()
				res, err := w.Run(dsm.Config{Seed: 1, RDMA: rdma.DefaultConfig(d, nil)})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(res.RaceCount)/float64(4*b.N), "flags/op")
			})
		}
	}
}

// BenchmarkE_T7_Reduce contrasts the §V-B one-sided reduction with the
// collective implementation.
func BenchmarkE_T7_Reduce(b *testing.B) {
	const n = 8
	b.Run("one-sided", func(b *testing.B) {
		names := make([]string, n)
		spec := RunSpec{
			Procs: n, Seed: 1,
			Setup: func(c *Cluster) error {
				for i := range names {
					names[i] = fmt.Sprintf("part%d", i)
					if err := c.Alloc(names[i], i, 4); err != nil {
						return err
					}
				}
				return nil
			},
		}
		iters := b.N
		progs := make([]Program, n)
		progs[0] = func(p *Proc) error {
			for i := 0; i < iters; i++ {
				if _, err := p.ReduceOneSided(names, OpSum); err != nil {
					return err
				}
			}
			return nil
		}
		spec.Programs = progs
		b.ResetTimer()
		res, err := Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(res.NetStats.TotalMsgs)/float64(iters), "msgs/op")
	})
	b.Run("collective", func(b *testing.B) {
		spec := RunSpec{
			Procs: n, Seed: 1,
			Setup: func(c *Cluster) error { return c.Alloc("scratch", 0, n+1) },
		}
		iters := b.N
		spec.Program = func(p *Proc) error {
			for i := 0; i < iters; i++ {
				if _, err := p.ReduceCollective("scratch", Word(p.ID()), OpSum, 0); err != nil {
					return err
				}
			}
			return nil
		}
		b.ResetTimer()
		res, err := Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(res.NetStats.TotalMsgs)/float64(iters), "msgs/op")
	})
}

// BenchmarkE_T10_Ablations crosses protocol and granularity on the same
// racy workload.
func BenchmarkE_T10_Ablations(b *testing.B) {
	for _, proto := range []string{"piggyback", "literal"} {
		for _, gran := range []string{"area", "node"} {
			b.Run(proto+"/"+gran, func(b *testing.B) {
				spec := RunSpec{
					Procs: 3, Seed: 1, Detector: "vw", Protocol: proto, Granularity: gran,
					Setup: func(c *Cluster) error { return c.Alloc("x", 0, 1) },
				}
				iters := b.N
				spec.Program = func(p *Proc) error {
					for i := 0; i < iters; i++ {
						if err := p.Put("x", 0, Word(p.ID())); err != nil {
							return err
						}
					}
					return nil
				}
				b.ResetTimer()
				res, err := Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(res.NetStats.TotalMsgs)/float64(3*iters), "msgs/op")
				b.ReportMetric(float64(res.RaceCount)/float64(3*iters), "flags/op")
			})
		}
	}
}

// ---- micro-benchmarks of the detection hot path ----

// BenchmarkCompareClocks measures Algorithm 3 across clock sizes.
func BenchmarkCompareClocks(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := vclock.New(n), vclock.New(n)
			x.Tick(0)
			y.Tick(n - 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = vclock.Compare(x, y)
			}
		})
	}
}

// BenchmarkMergeClocks measures Algorithm 4 (max_clock).
func BenchmarkMergeClocks(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := vclock.New(n), vclock.New(n)
			for i := 0; i < n; i++ {
				y[i] = uint64(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Merge(y)
			}
		})
	}
}

// BenchmarkDetectorOnAccess measures one detection step per detector. The
// vw detectors are required to stay at or below one allocation per access
// in steady state (see TestOnAccessAllocationBudget).
func BenchmarkDetectorOnAccess(b *testing.B) {
	for _, d := range benchDetectors() {
		b.Run(d.Name(), func(b *testing.B) { benchDetectorOnAccess(b, d, 16) })
	}
}

// BenchmarkDetectorOnAccess256 is the same step at cluster size 256 — the
// clock sizes the E_Scale family runs at.
func BenchmarkDetectorOnAccess256(b *testing.B) {
	for _, d := range benchDetectors() {
		b.Run(d.Name(), func(b *testing.B) { benchDetectorOnAccess(b, d, 256) })
	}
}

// BenchmarkMemoryPutThroughput measures raw substrate bandwidth (large
// payload puts, detection off).
func BenchmarkMemoryPutThroughput(b *testing.B) {
	b.SetBytes(512 * memory.WordBytes)
	benchOps(b, "off", "", 512, false)
}
