package dsmrace

import (
	"fmt"
	"testing"

	"dsmrace/internal/verify"
)

// racyTraceResult produces one traced racy run for offline benchmarks.
func racyTraceResult(b *testing.B, ops int) *Result {
	b.Helper()
	res, err := Run(RunSpec{
		Procs:    4,
		Seed:     1,
		Detector: "vw-exact",
		Trace:    true,
		Setup: func(c *Cluster) error {
			return c.Alloc("x", 0, 4)
		},
		Program: func(p *Proc) error {
			for i := 0; i < ops; i++ {
				if i%3 == 0 {
					if _, err := p.GetWord("x", 0); err != nil {
						return err
					}
				} else if err := p.Put("x", 0, Word(i)); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkGroundTruth measures the offline exact verifier; the quadratic
// full-history cost and the effect of the matrix-clock-style pruning.
func BenchmarkGroundTruth(b *testing.B) {
	for _, ops := range []int{25, 100} {
		res := racyTraceResult(b, ops)
		for _, prune := range []bool{false, true} {
			name := fmt.Sprintf("ops=%d/prune=%v", ops, prune)
			b.Run(name, func(b *testing.B) {
				opt := verify.DefaultOptions()
				opt.PruneHistory = prune
				var pairs int
				for i := 0; i < b.N; i++ {
					truth := verify.GroundTruth(res.Trace, opt)
					pairs = len(truth.Pairs)
				}
				b.ReportMetric(float64(pairs), "pairs")
			})
		}
	}
}

// BenchmarkReplayDetector measures offline detector replay over one trace.
func BenchmarkReplayDetector(b *testing.B) {
	res := racyTraceResult(b, 50)
	for _, det := range []string{"vw-exact", "single-clock", "epoch"} {
		b.Run(det, func(b *testing.B) {
			d, err := NewDetector(det)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				verify.ReplayDetector(res.Trace, d, verify.DefaultOptions())
			}
		})
	}
}

// BenchmarkBarrier measures the clock-merging barrier across cluster sizes.
func BenchmarkBarrier(b *testing.B) {
	for _, n := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			iters := b.N
			spec := RunSpec{
				Procs:    n,
				Seed:     1,
				Detector: "off",
				Setup:    func(c *Cluster) error { return nil },
				Program: func(p *Proc) error {
					for i := 0; i < iters; i++ {
						p.Barrier()
					}
					return nil
				},
			}
			b.ResetTimer()
			res, err := Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(res.Duration)/float64(iters), "vns/barrier")
			b.ReportMetric(float64(res.NetStats.TotalMsgs)/float64(iters), "msgs/barrier")
		})
	}
}

// BenchmarkTraceOverhead compares a run with and without trace recording.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("trace=%v", traced), func(b *testing.B) {
			iters := b.N
			spec := RunSpec{
				Procs:    2,
				Seed:     1,
				Detector: "vw-exact",
				Trace:    traced,
				Setup:    func(c *Cluster) error { return c.Alloc("x", 1, 1) },
				Programs: []Program{
					func(p *Proc) error {
						for i := 0; i < iters; i++ {
							if err := p.Put("x", 0, Word(i)); err != nil {
								return err
							}
						}
						return nil
					},
					nil,
				},
			}
			b.ResetTimer()
			if _, err := Run(spec); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkExploreSchedules measures the divergence sweep of E-T8.
func BenchmarkExploreSchedules(b *testing.B) {
	spec := RunSpec{
		Procs:    3,
		Detector: "off",
		Setup:    func(c *Cluster) error { return c.Alloc("x", 0, 1) },
		Program:  func(p *Proc) error { return p.Put("x", 0, Word(p.ID())) },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExploreSchedules(spec, SeedRange(8)); err != nil {
			b.Fatal(err)
		}
	}
}
