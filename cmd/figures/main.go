// Command figures regenerates the paper's Figures 1–5 as executable ASCII
// scenarios with measured clock values, message counts and race verdicts.
//
// Usage:
//
//	figures            # all figures
//	figures -fig 5a    # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"dsmrace/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure number (1, 2, 3, 4, 5a, 5b, 5c) or all")
	flag.Parse()

	var figs []figures.Figure
	if *fig == "all" {
		figs = figures.All()
	} else {
		f, ok := figures.ByNum(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		figs = []figures.Figure{f}
	}
	for _, f := range figs {
		fmt.Printf("Figure %s: %s\n", f.Num, f.Title)
		fmt.Println()
		fmt.Println(f.Diagram)
		for _, n := range f.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Printf("  races detected: %d\n\n", f.Races)
	}
}
