// Command mcheck exhaustively enumerates every distinguishable schedule of
// tiny litmus configurations under a coherence protocol and classifies each
// terminal state against the sequential-consistency, causal and coherence
// axioms. It exits nonzero when any explored pair lands below the level the
// protocol promises (SC for write-update, write-invalidate and MESI; causal
// for causal memory), so it doubles as a scriptable protocol gate.
//
// Usage:
//
//	mcheck                             # every litmus under every protocol
//	mcheck -litmus sb,iriw -protocol causal
//	mcheck -protocol wi-skip-last-inval    # explore a seeded mutation
//	mcheck -max-runs 2097152               # raise the enumeration budget
//	mcheck -por=on -workers 4              # partial-order reduction, 4 workers
//	mcheck -json                           # one JSON stats object per pair
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dsmrace"
	coherencepkg "dsmrace/internal/coherence"
)

// promised is the consistency level each stock protocol guarantees; seeded
// mutations promise nothing (they exist to be caught).
func promised(protocol string) dsmrace.McheckLevel {
	if protocol == "causal" {
		return dsmrace.McheckLevelCausal
	}
	return dsmrace.McheckLevelSC
}

// stats is the -json output shape for one litmus/protocol pair.
type stats struct {
	Litmus                   string `json:"litmus"`
	Protocol                 string `json:"protocol"`
	POR                      bool   `json:"por"`
	Runs                     int    `json:"runs"`
	Unique                   int    `json:"unique"`
	UniqueStates             int    `json:"unique_states"`
	StateFold                uint64 `json:"state_fold"`
	MaxChoices               int    `json:"max_choices"`
	Pruned                   int    `json:"pruned"`
	MemoHits                 int    `json:"memo_hits"`
	Weakest                  string `json:"weakest"`
	SCViolations             int    `json:"sc_violations"`
	CausalViolations         int    `json:"causal_violations"`
	CoherenceViolations      int    `json:"coherence_violations"`
	StateSCViolations        int    `json:"state_sc_violations"`
	StateCausalViolations    int    `json:"state_causal_violations"`
	StateCoherenceViolations int    `json:"state_coherence_violations"`
	FirstNonSC               string `json:"first_non_sc,omitempty"`
	FirstNonCausal           string `json:"first_non_causal,omitempty"`
}

func main() {
	var (
		litmus   = flag.String("litmus", "all", "comma-separated litmus names (sb, iriw, mp, recall, sb3) or all")
		protocol = flag.String("protocol", "all", "comma-separated coherence protocols, mutation names, or all (stock protocols)")
		maxRuns  = flag.Int("max-runs", 1<<20, "budget of runs attempted per pair; exceeding it is an error")
		por      = flag.String("por", "off", "partial-order reduction: on or off (state set and verdicts are identical either way)")
		workers  = flag.Int("workers", 0, "exploration worker-pool size; 0 means GOMAXPROCS (outcome is identical for every value)")
		jsonOut  = flag.Bool("json", false, "emit one JSON stats object per pair instead of text")
	)
	flag.Parse()
	porOn := false
	switch *por {
	case "on":
		porOn = true
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "mcheck: -por=%q (want on or off)\n", *por)
		os.Exit(2)
	}

	litmuses := strings.Split(*litmus, ",")
	if *litmus == "all" {
		litmuses = dsmrace.McheckLitmusNames()
	}
	protocols := strings.Split(*protocol, ",")
	if *protocol == "all" {
		protocols = dsmrace.CoherenceNames()
	}

	enc := json.NewEncoder(os.Stdout)
	broken := false
	for _, lit := range litmuses {
		for _, proto := range protocols {
			out, err := dsmrace.McheckExplore(lit, proto, dsmrace.McheckOptions{
				MaxRuns: *maxRuns, POR: porOn, Workers: *workers,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcheck:", err)
				os.Exit(2)
			}
			if *jsonOut {
				enc.Encode(stats{
					Litmus: out.Litmus, Protocol: out.Protocol, POR: out.POR,
					Runs: out.Runs, Unique: out.Unique,
					UniqueStates: out.UniqueStates, StateFold: out.StateFold,
					MaxChoices: out.MaxChoices, Pruned: out.Pruned, MemoHits: out.MemoHits,
					Weakest:      out.Weakest.String(),
					SCViolations: out.SCViolations, CausalViolations: out.CausalViolations,
					CoherenceViolations:      out.CoherenceViolations,
					StateSCViolations:        out.StateSCViolations,
					StateCausalViolations:    out.StateCausalViolations,
					StateCoherenceViolations: out.StateCoherenceViolations,
					FirstNonSC:               out.FirstNonSC, FirstNonCausal: out.FirstNonCausal,
				})
			} else {
				fmt.Println(out)
				if out.POR {
					fmt.Printf("  por: pruned=%d memo-hits=%d states=%d\n", out.Pruned, out.MemoHits, out.UniqueStates)
				}
				if out.FirstNonSC != "" {
					fmt.Printf("  first non-SC:     %s\n", out.FirstNonSC)
				}
				if out.FirstNonCausal != "" {
					fmt.Printf("  first non-causal: %s\n", out.FirstNonCausal)
				}
			}
			if _, err := coherencepkg.FromName(proto); err == nil && out.Weakest < promised(proto) {
				if !*jsonOut {
					fmt.Printf("  VIOLATION: %s promises %s, weakest observed %s\n", proto, promised(proto), out.Weakest)
				}
				broken = true
			}
		}
	}
	if broken {
		os.Exit(1)
	}
}
