// Command mcheck exhaustively enumerates every distinguishable schedule of
// tiny litmus configurations under a coherence protocol and classifies each
// terminal state against the sequential-consistency, causal and coherence
// axioms. It exits nonzero when any explored pair lands below the level the
// protocol promises (SC for write-update, write-invalidate and MESI; causal
// for causal memory), so it doubles as a scriptable protocol gate.
//
// Usage:
//
//	mcheck                             # every litmus under every protocol
//	mcheck -litmus sb,iriw -protocol causal
//	mcheck -protocol wi-skip-last-inval    # explore a seeded mutation
//	mcheck -max-runs 2097152               # raise the enumeration budget
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dsmrace"
	coherencepkg "dsmrace/internal/coherence"
)

// promised is the consistency level each stock protocol guarantees; seeded
// mutations promise nothing (they exist to be caught).
func promised(protocol string) dsmrace.McheckLevel {
	if protocol == "causal" {
		return dsmrace.McheckLevelCausal
	}
	return dsmrace.McheckLevelSC
}

func main() {
	var (
		litmus   = flag.String("litmus", "all", "comma-separated litmus names (sb, iriw, mp, recall) or all")
		protocol = flag.String("protocol", "all", "comma-separated coherence protocols, mutation names, or all (stock protocols)")
		maxRuns  = flag.Int("max-runs", 1<<20, "enumeration budget per pair; exceeding it is an error")
	)
	flag.Parse()

	litmuses := strings.Split(*litmus, ",")
	if *litmus == "all" {
		litmuses = dsmrace.McheckLitmusNames()
	}
	protocols := strings.Split(*protocol, ",")
	if *protocol == "all" {
		protocols = dsmrace.CoherenceNames()
	}

	broken := false
	for _, lit := range litmuses {
		for _, proto := range protocols {
			out, err := dsmrace.Mcheck(lit, proto, *maxRuns)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcheck:", err)
				os.Exit(2)
			}
			fmt.Println(out)
			if out.FirstNonSC != "" {
				fmt.Printf("  first non-SC:     %s\n", out.FirstNonSC)
			}
			if out.FirstNonCausal != "" {
				fmt.Printf("  first non-causal: %s\n", out.FirstNonCausal)
			}
			if _, err := coherencepkg.FromName(proto); err == nil && out.Weakest < promised(proto) {
				fmt.Printf("  VIOLATION: %s promises %s, weakest observed %s\n", proto, promised(proto), out.Weakest)
				broken = true
			}
		}
	}
	if broken {
		os.Exit(1)
	}
}
