// Command bench runs the repository's standard benchmark families via
// testing.Benchmark and writes a machine-readable JSON record — the
// persistent perf trajectory every PR appends to (BENCH_<pr>.json).
//
// For each benchmark it reports host ns/op, allocs/op and B/op next to the
// simulator's virtual metrics (msgs/op, vns/op, wireB/op), so hot-path
// regressions are visible in both host time and modelled cost.
//
// Usage:
//
//	go run ./cmd/bench                                # all families, 2000 iterations
//	go run ./cmd/bench -filter 'E_T4|E_Coherence' -benchtime 50000x
//	go run ./cmd/bench -out BENCH_<pr>.json -pr <pr> -baseline BENCH_<pr-1>.json -note "after <change>"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"testing"
	"time"

	"dsmrace"
)

// Result is one benchmark's recorded numbers.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk schema of BENCH_<pr>.json.
type File struct {
	Schema    string            `json:"schema"`
	PR        int               `json:"pr,omitempty"`
	Note      string            `json:"note,omitempty"`
	Date      string            `json:"date"`
	GoVersion string            `json:"go_version"`
	CPU       string            `json:"cpu"`
	BenchTime string            `json:"benchtime"`
	Results   []Result          `json:"results"`
	Baseline  map[string]Result `json:"baseline,omitempty"` // prior-PR numbers for the gated benchmarks
}

func main() {
	out := flag.String("out", "", "output JSON path (default: stdout)")
	filter := flag.String("filter", "", "regexp selecting benchmark names (default: all)")
	benchtime := flag.String("benchtime", "2000x", "benchmark duration per family (Nx or duration)")
	pr := flag.Int("pr", 0, "PR number to record")
	note := flag.String("note", "", "free-form note recorded in the file")
	baseline := flag.String("baseline", "", "existing BENCH_*.json whose results become this file's baseline section")
	flag.Parse()

	// testing.Benchmark honours the package-level benchtime flag; Init
	// registers it so a main program can set it.
	testing.Init()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(2)
	}

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "bench: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}

	file := File{
		Schema:    "dsmrace-bench/v1",
		PR:        *pr,
		Note:      *note,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		CPU:       fmt.Sprintf("%s/%s x%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		BenchTime: *benchtime,
	}
	if *baseline != "" {
		prev, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		file.Baseline = prev
	}

	for _, spec := range dsmrace.StandardBenchmarks() {
		if re != nil && !re.MatchString(spec.Name) {
			continue
		}
		r := testing.Benchmark(spec.F)
		res := Result{
			Name:        spec.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		file.Results = append(file.Results, res)
		fmt.Fprintf(os.Stderr, "%-40s %10d iters %12.1f ns/op %6d allocs/op%s\n",
			res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp, metricsLine(res.Metrics))
	}

	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(file.Results))
}

// readBaseline lifts a previous run's results into a name-indexed map.
func readBaseline(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	m := make(map[string]Result, len(f.Results))
	for _, r := range f.Results {
		m[r.Name] = r
	}
	return m, nil
}

func metricsLine(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("  %s=%.1f", k, m[k])
	}
	return s
}
