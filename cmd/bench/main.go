// Command bench runs the repository's standard benchmark families via
// testing.Benchmark and writes a machine-readable JSON record — the
// persistent perf trajectory every PR appends to (BENCH_<pr>.json).
//
// For each benchmark it reports host ns/op, allocs/op and B/op next to the
// simulator's virtual metrics (msgs/op, vns/op, wireB/op), so hot-path
// regressions are visible in both host time and modelled cost.
//
// Usage:
//
//	go run ./cmd/bench                                # all families, 2000 iterations
//	go run ./cmd/bench -filter 'E_T4|E_Coherence' -benchtime 50000x
//	go run ./cmd/bench -out BENCH_<pr>.json -pr <pr> -baseline BENCH_<pr-1>.json -note "after <change>"
//	go run ./cmd/bench -fault                         # include the E_Fault family (armed-idle tax + hostile rows)
//	go run ./cmd/bench -scale-benchtime 150x          # include the E_Scale n≤512 sweep
//	go run ./cmd/bench -partition-benchtime 50x       # include the E_Partition kernels sweep + E_HomeBatch
//	go run ./cmd/bench -mcheck-benchtime 5x -procs 1,0  # include the E_Mcheck family with a worker-scaling sweep
//	go run ./cmd/bench -compare BENCH_2.json -in BENCH_3.json   # delta table, no benchmarks run
//	go run ./cmd/bench -compare BENCH_2.json          # run, then print the delta table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"dsmrace"
)

// Result is one benchmark's recorded numbers.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk schema of BENCH_<pr>.json.
type File struct {
	Schema    string `json:"schema"`
	PR        int    `json:"pr,omitempty"`
	Note      string `json:"note,omitempty"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	CPU       string `json:"cpu"`
	BenchTime string `json:"benchtime"`
	// GoMaxProcs and CPUModel pin the host parallelism the wall-clock
	// numbers were taken under — indispensable context for the E_Partition
	// rows (a GOMAXPROCS=1 host cannot show multi-kernel speedup; its K>1
	// rows measure pure partitioning overhead).
	GoMaxProcs int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
	// ScaleBenchTime is the separate (smaller) benchtime the E_Scale family
	// ran with; its entries in Results are per-that-many rounds.
	ScaleBenchTime string `json:"scale_benchtime,omitempty"`
	// PartitionBenchTime is the benchtime of the E_Partition + E_HomeBatch
	// families (skipped when empty).
	PartitionBenchTime string `json:"partition_benchtime,omitempty"`
	// McheckBenchTime is the benchtime of the E_Mcheck model-checker family
	// (skipped when empty); one iteration is one whole exploration.
	McheckBenchTime string            `json:"mcheck_benchtime,omitempty"`
	Results         []Result          `json:"results"`
	Baseline        map[string]Result `json:"baseline,omitempty"` // prior-PR numbers for the gated benchmarks
}

func main() {
	out := flag.String("out", "", "output JSON path (default: stdout)")
	filter := flag.String("filter", "", "regexp selecting benchmark names (default: all)")
	benchtime := flag.String("benchtime", "2000x", "benchmark duration per family (Nx or duration)")
	scaleBenchtime := flag.String("scale-benchtime", "", "benchtime for the E_Scale family (empty = skip the family)")
	partitionBenchtime := flag.String("partition-benchtime", "", "benchtime for the E_Partition and E_HomeBatch families (empty = skip them)")
	faultBench := flag.Bool("fault", false, "include the E_Fault family (armed-idle overhead pair + hostile rows)")
	mcheckBenchtime := flag.String("mcheck-benchtime", "", "benchtime for the E_Mcheck model-checker family (empty = skip it); with -procs the family is re-run per GOMAXPROCS value for worker scaling")
	kernels := flag.String("kernels", "", "comma-separated shard counts for the E_Partition sweep (default 1,2,4,8)")
	procs := flag.String("procs", "", "comma-separated GOMAXPROCS values to re-run the E_Partition sweep under (0 = NumCPU); rows gain a /procs=N suffix and the setting is restored afterwards")
	pr := flag.Int("pr", 0, "PR number to record")
	note := flag.String("note", "", "free-form note recorded in the file")
	baseline := flag.String("baseline", "", "existing BENCH_*.json whose results become this file's baseline section")
	compare := flag.String("compare", "", "previous BENCH_*.json to print a per-benchmark delta table against")
	in := flag.String("in", "", "with -compare: existing BENCH_*.json to compare instead of running benchmarks")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	flag.Parse()

	// fail flushes the CPU profile (if one is running) before exiting, so
	// an error on the way out — an unwritable -out path, a bad -compare
	// file — never discards an expensive profiled benchmark run.
	// StopCPUProfile is a no-op when profiling never started.
	fail := func(format string, args ...any) {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, format, args...)
		os.Exit(1)
	}

	// Flag validation and the run-nothing compare-only mode come before
	// profiling starts: every later exit path runs through fail().
	if *in != "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "bench: -in only makes sense with -compare")
		os.Exit(2)
	}
	if *compare != "" && *in != "" {
		old, err := readFile(*compare)
		if err == nil {
			var cur *File
			if cur, err = readFile(*in); err == nil {
				printCompare(os.Stdout, old, cur)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("bench: %v\n", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("bench: %v\n", err)
		}
		defer pprof.StopCPUProfile()
	}

	// testing.Benchmark honours the package-level benchtime flag; Init
	// registers it so a main program can set it.
	testing.Init()
	setBenchtime := func(bt string) {
		if err := flag.Lookup("test.benchtime").Value.Set(bt); err != nil {
			fmt.Fprintf(os.Stderr, "bench: bad benchtime %q: %v\n", bt, err)
			os.Exit(2)
		}
	}

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "bench: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}

	file := File{
		Schema:     "dsmrace-bench/v1",
		PR:         *pr,
		Note:       *note,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		CPU:        fmt.Sprintf("%s/%s x%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		BenchTime:  *benchtime,
	}
	if *scaleBenchtime != "" {
		file.ScaleBenchTime = *scaleBenchtime
	}
	if *partitionBenchtime != "" {
		file.PartitionBenchTime = *partitionBenchtime
	}
	if *mcheckBenchtime != "" {
		file.McheckBenchTime = *mcheckBenchtime
	}
	if *baseline != "" {
		prev, err := readBaseline(*baseline)
		if err != nil {
			fail("bench: %v\n", err)
		}
		file.Baseline = prev
	}

	run := func(specs []dsmrace.BenchSpec) {
		for _, spec := range specs {
			if re != nil && !re.MatchString(spec.Name) {
				continue
			}
			r := testing.Benchmark(spec.F)
			res := Result{
				Name:        spec.Name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if len(r.Extra) > 0 {
				res.Metrics = make(map[string]float64, len(r.Extra))
				for k, v := range r.Extra {
					res.Metrics[k] = v
				}
			}
			file.Results = append(file.Results, res)
			fmt.Fprintf(os.Stderr, "%-40s %10d iters %12.1f ns/op %6d allocs/op%s\n",
				res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp, metricsLine(res.Metrics))
		}
	}
	setBenchtime(*benchtime)
	run(dsmrace.StandardBenchmarks())
	if *faultBench {
		run(dsmrace.FaultBenchmarks())
	}
	if *scaleBenchtime != "" {
		setBenchtime(*scaleBenchtime)
		run(dsmrace.ScaleBenchmarks())
	}
	if *partitionBenchtime != "" {
		if *kernels != "" {
			ks, err := parseKernels(*kernels)
			if err != nil {
				fail("bench: %v\n", err)
			}
			dsmrace.PartitionKs = ks
		}
		setBenchtime(*partitionBenchtime)
		if *procs == "" {
			run(dsmrace.PartitionBenchmarks())
		} else {
			// The GOMAXPROCS sweep: re-run the whole partition family under
			// each requested parallelism so the same rows exist at (say) 1
			// and NumCPU and speedup reads as a row-vs-row division. The
			// procs metric stamps every row regardless; the name suffix
			// keeps the sweeps from colliding in Results.
			pvals, err := parseProcs(*procs)
			if err != nil {
				fail("bench: %v\n", err)
			}
			restore := runtime.GOMAXPROCS(0)
			for _, p := range pvals {
				runtime.GOMAXPROCS(p)
				run(suffixed(dsmrace.PartitionBenchmarks(), fmt.Sprintf("/procs=%d", p)))
			}
			runtime.GOMAXPROCS(restore)
		}
		run(dsmrace.HomeBatchBenchmarks())
	}
	if *mcheckBenchtime != "" {
		setBenchtime(*mcheckBenchtime)
		if *procs == "" {
			run(dsmrace.McheckBenchmarks())
		} else {
			// Worker scaling: the exploration pool defaults to GOMAXPROCS,
			// so sweeping GOMAXPROCS (typically 1,0) times the same rows
			// serial and parallel; speedup reads as a row-vs-row division,
			// and determinism means both rows explore identical trees.
			pvals, err := parseProcs(*procs)
			if err != nil {
				fail("bench: %v\n", err)
			}
			restore := runtime.GOMAXPROCS(0)
			for _, p := range pvals {
				runtime.GOMAXPROCS(p)
				run(suffixed(dsmrace.McheckBenchmarks(), fmt.Sprintf("/procs=%d", p)))
			}
			runtime.GOMAXPROCS(restore)
		}
	}

	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fail("bench: %v\n", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fail("bench: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(file.Results))
	}
	if *compare != "" {
		old, err := readFile(*compare)
		if err != nil {
			fail("bench: %v\n", err)
		}
		// Without -out, stdout already carries the JSON record: keep the
		// human-readable table off it so the record stays parseable.
		dst := os.Stdout
		if *out == "" {
			dst = os.Stderr
		}
		printCompare(dst, old, &file)
	}
}

// printCompare renders the per-benchmark delta table between two recorded
// runs: host ns/op and allocs/op plus the virtual msgs/op, for every
// benchmark present in both files (new-only benchmarks are listed without
// deltas; old-only benchmarks are dropped with a note). It must cope with
// damaged or partial baselines — a baseline missing a whole family, or one
// with zero/NaN ns/op entries (a truncated run) — by printing "n/a" rows
// rather than dividing by zero.
func printCompare(w io.Writer, old, cur *File) {
	oldByName := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	fmt.Fprintf(w, "# bench delta: %s (pr %d) -> %s (pr %d)\n",
		old.Date, old.PR, cur.Date, cur.PR)
	fmt.Fprintf(w, "%-42s %12s %12s %8s  %7s  %9s  %9s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs", "old msgs", "new msgs")
	msgs := func(r Result) string {
		m, ok := r.Metrics["msgs/op"]
		if !ok {
			return "-" // host-only benchmark: no simulated traffic to report
		}
		return fmt.Sprintf("%.2f", m)
	}
	dropped := len(oldByName)
	for _, r := range cur.Results {
		o, ok := oldByName[r.Name]
		if !ok {
			fmt.Fprintf(w, "%-42s %12s %12.1f %8s  %7d  %9s  %9s\n",
				r.Name, "-", r.NsPerOp, "new", r.AllocsPerOp, "-", msgs(r))
			continue
		}
		dropped--
		fmt.Fprintf(w, "%-42s %12s %12s %8s  %4d%+-3d  %9s  %9s\n",
			r.Name, ns(o.NsPerOp), ns(r.NsPerOp), pctDelta(o.NsPerOp, r.NsPerOp),
			o.AllocsPerOp, r.AllocsPerOp-o.AllocsPerOp,
			msgs(o), msgs(r))
	}
	if dropped > 0 {
		fmt.Fprintf(w, "(%d benchmark(s) in %s are not in the new run)\n", dropped, old.Date)
	}
}

// pctDelta renders the signed percentage change old -> new (negative =
// faster), or "n/a" when the baseline entry is unusable (zero from a
// truncated run, or NaN from a hand-edited file).
func pctDelta(old, new float64) string {
	if old == 0 || math.IsNaN(old) || math.IsNaN(new) || math.IsInf(old, 0) || math.IsInf(new, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", (new-old)/old*100)
}

// ns renders an ns/op cell, degrading non-finite values to "n/a".
func ns(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", v)
}

// parseKernels parses the -kernels list ("1,2,4,8"); every entry must be a
// whole positive integer (Atoi rejects trailing garbage like "2x8").
func parseKernels(list string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(list, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad -kernels entry %q (want positive integers)", part)
		}
		ks = append(ks, k)
	}
	return ks, nil
}

// parseProcs parses the -procs list ("1,0" → [1, NumCPU]), normalising the
// 0 = NumCPU convention and dropping duplicates (a single-core host asking
// for {1, NumCPU} runs the sweep once).
func parseProcs(list string) ([]int, error) {
	var ps []int
	for _, part := range strings.Split(list, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 0 {
			return nil, fmt.Errorf("bad -procs entry %q (want non-negative integers; 0 = NumCPU)", part)
		}
		if p == 0 {
			p = runtime.NumCPU()
		}
		dup := false
		for _, seen := range ps {
			dup = dup || seen == p
		}
		if !dup {
			ps = append(ps, p)
		}
	}
	return ps, nil
}

// suffixed returns the specs with a name suffix (the -procs sweep label).
func suffixed(specs []dsmrace.BenchSpec, suffix string) []dsmrace.BenchSpec {
	out := make([]dsmrace.BenchSpec, len(specs))
	for i, sp := range specs {
		out[i] = dsmrace.BenchSpec{Name: sp.Name + suffix, F: sp.F}
	}
	return out
}

// cpuModel best-effort reads the host CPU model name (Linux /proc/cpuinfo;
// empty elsewhere) so BENCH records say what machine their wall-clock
// numbers came from.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// readFile parses a recorded BENCH_*.json.
func readFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &f, nil
}

// readBaseline lifts a previous run's results into a name-indexed map.
func readBaseline(path string) (map[string]Result, error) {
	f, err := readFile(path)
	if err != nil {
		return nil, err
	}
	m := make(map[string]Result, len(f.Results))
	for _, r := range f.Results {
		m[r.Name] = r
	}
	return m, nil
}

func metricsLine(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("  %s=%.1f", k, m[k])
	}
	return s
}
