// Command dsmlint runs the repository's invariant lint suite
// (internal/lint): determinism, poolown, eventctx.
//
// Two modes share the analyzers:
//
//	dsmlint [packages]            standalone: load via the go command and
//	                              report across every listed package
//	                              (default ./...)
//	go vet -vettool=$(which dsmlint) ./...
//	                              vet mode: cmd/go drives dsmlint one
//	                              package at a time through the vet tool
//	                              protocol (a JSON .cfg per package, with
//	                              build-cache export data for every import)
//
// Exit status: 0 clean, 1 operational error, 2 findings.
//
// The vet protocol is implemented directly on the standard library (this
// module vendors nothing): the -V=full handshake identifies the tool to
// cmd/go's action cache, the .cfg names the package's files and export
// data, and diagnostics print as file:line:col lines on stderr.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"dsmrace/internal/lint"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) > 0 && args[0] == "-flags" {
		// cmd/go probes the tool's flag set to know which vet flags it may
		// forward; dsmlint takes none.
		fmt.Println("[]")
		return
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(vetMode(args[n-1]))
	}
	os.Exit(standalone(args))
}

// printVersion answers cmd/go's -V=full tool handshake. The contract
// (cmd/go/internal/work.(*Builder).toolID) wants "<name> version devel ...
// buildID=<id>"; the id must change when the tool's behaviour does, so the
// binary hashes itself.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("dsmlint version devel buildID=%x\n", h.Sum(nil)[:16])
}

func standalone(patterns []string) int {
	pkgs, srcDir, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmlint:", err)
		return 1
	}
	exit := 0
	for _, p := range pkgs {
		if p.Err != nil {
			fmt.Fprintln(os.Stderr, "dsmlint:", p.Err)
			exit = 1
			continue
		}
		diags, err := lint.RunAnalyzers(lint.All(), p.Fset, p.Files, p.Pkg, p.Info, srcDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmlint:", err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			if exit == 0 {
				exit = 2
			}
		}
	}
	return exit
}

// vetConfig mirrors cmd/go/internal/work.vetConfig: the JSON handed to a
// vet tool for one package.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dsmlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The vetx file is dsmlint's (empty) fact set; cmd/go caches it and
	// requires the tool to produce it even when there is nothing to say.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("dsmlint/vetx v1\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "dsmlint:", err)
			return 1
		}
	}
	// Dependencies are visited only for facts; dsmlint keeps none.
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "dsmlint:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := lint.MapImporter(importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}), cfg.ImportMap)
	pkg, info, err := lint.Check(cfg.ImportPath, fset, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "dsmlint:", err)
		return 1
	}
	diags, err := lint.RunAnalyzers(lint.All(), fset, files, pkg, info, lint.ModuleSrcDir(cfg.Dir))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
