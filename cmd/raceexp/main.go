// Command raceexp is the experiment driver: it regenerates every table of
// EXPERIMENTS.md (E-T1 … E-T12) from live simulation runs.
//
// Independent trials (seed sweeps, detector grids, protocol comparisons)
// fan out across OS threads via the parallel experiment driver; -par caps
// the worker count (default: GOMAXPROCS). Results are merged in trial
// order, so the emitted tables are bit-identical for a fixed seed whatever
// the parallelism.
//
// Usage:
//
//	raceexp             # run every experiment, GOMAXPROCS-wide
//	raceexp -exp T3     # run one experiment
//	raceexp -par 1      # serial execution (same output)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dsmrace"
	"dsmrace/internal/coherence"
	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/rdma"
	"dsmrace/internal/stats"
	"dsmrace/internal/vclock"
	"dsmrace/internal/verify"
	"dsmrace/internal/workload"
)

var experiments = []struct {
	id   string
	desc string
	run  func()
}{
	{"T1", "clock storage per area vs process count (§IV-C, §IV-D)", expT1},
	{"T2", "messages and bytes per operation by protocol (§V-A)", expT2},
	{"T3", "detector precision/recall against exact ground truth", expT3},
	{"T4", "runtime overhead vs process count (§V-A debugging scale)", expT4},
	{"T5", "benign master-worker race: signal, don't abort (§IV-D)", expT5},
	{"T6", "false positives vs read ratio: V+W against single clock (§IV-D)", expT6},
	{"T7", "one-sided vs collective reduction (§V-B future work)", expT7},
	{"T8", "schedule divergence: the operational race definition (§III-C)", expT8},
	{"T9", "truncated clocks: the Charron-Bost bound in action (§IV-C)", expT9},
	{"T10", "ablations: protocol x granularity x home tick", expT10},
	{"T11", "clock-granularity false sharing: area clocks vs word-level truth (§V-A)", expT11},
	{"T12", "coherence protocols: write-update vs write-invalidate cost and coverage", expT12},
}

// par is the -par worker cap, shared by every experiment's trial fan-out.
var par = flag.Int("par", 0, "max concurrent trials (0 = GOMAXPROCS, 1 = serial)")

func main() {
	exp := flag.String("exp", "all", "experiment id (T1..T12) or all")
	flag.Parse()
	ran := false
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		ran = true
		fmt.Printf("### E-%s: %s\n\n", e.id, e.desc)
		e.run()
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "raceexp: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// parTrials fans n independent trials across the driver's workers and
// returns the results in trial order.
func parTrials[T any](n int, trial func(i int) (T, error)) []T {
	return must(dsmrace.Parallel(n, *par, trial))
}

func detectorOf(name string) core.Detector { return must(dsmrace.NewDetector(name)) }

// expT1: storage bytes per area for each detector as n grows.
func expT1() {
	tb := stats.NewTable("detection state bytes per shared area",
		"procs", "vw (V+W)", "single-clock", "epoch", "vw/single ratio")
	for _, n := range []int{2, 4, 8, 10, 16, 32, 64} {
		vw := core.NewVWDetector().NewAreaState(n).StorageBytes()
		single := detectorOf("single-clock").NewAreaState(n).StorageBytes()
		epoch := detectorOf("epoch").NewAreaState(n).StorageBytes()
		tb.Row(n, vw, single, epoch, float64(vw)/float64(single))
	}
	fmt.Print(tb)
	fmt.Println("claim check: vw = 2*(2+8n) bytes — linear in n (Charron-Bost floor), exactly double the single clock (§IV-D).")
}

// expT2: per-op wire cost for put and get under each protocol at n=4,10.
func expT2() {
	run := func(n int, det, proto string, read, compress bool) (msgs, bytes float64) {
		const ops = 40
		spec := dsmrace.RunSpec{
			Procs: n, Seed: 1, Detector: det, Protocol: proto, CompressClocks: compress,
			Setup: func(c *dsmrace.Cluster) error { return c.Alloc("x", n-1, 4) },
		}
		progs := make([]dsmrace.Program, n)
		progs[0] = func(p *dsmrace.Proc) error {
			for i := 0; i < ops; i++ {
				if read {
					if _, err := p.GetWord("x", 0); err != nil {
						return err
					}
				} else if err := p.Put("x", 0, 1); err != nil {
					return err
				}
			}
			return nil
		}
		spec.Programs = progs
		res := must(dsmrace.Run(spec))
		return float64(res.NetStats.TotalMsgs) / ops, float64(res.NetStats.TotalBytes) / ops
	}
	for _, n := range []int{4, 10} {
		tb := stats.NewTable(fmt.Sprintf("wire cost per operation, n=%d", n),
			"op", "mode", "msgs/op", "bytes/op")
		for _, mode := range []struct {
			det, proto string
			compress   bool
		}{
			{"off", "piggyback", false},
			{"vw", "piggyback", false},
			{"vw", "piggyback", true},
			{"vw", "literal", false},
		} {
			label := "detector off"
			if mode.det != "off" {
				label = mode.proto
				if mode.compress {
					label += "+delta"
				}
			}
			m, by := run(n, mode.det, mode.proto, false, mode.compress)
			tb.Row("put", label, m, by)
			m, by = run(n, mode.det, mode.proto, true, mode.compress)
			tb.Row("get", label, m, by)
		}
		fmt.Print(tb)
	}
	fmt.Println("claim check: literal Algorithm 1 costs 13 msgs/put and 10 msgs/get; piggyback needs the same 2 msgs as detection-off, paying only clock bytes; delta encoding shrinks the clock bytes to near-constant.")
}

// scoreWorkload runs w under det and scores against exact ground truth.
func scoreWorkload(w workload.Workload, det string, seed int64) (verify.Score, error) {
	res, err := w.Run(dsm.Config{Seed: seed, Trace: true, RDMA: rdma.DefaultConfig(detectorOf(det), nil)})
	if err != nil {
		return verify.Score{}, err
	}
	truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())
	return verify.ScoreReports(truth, det, res.Races), nil
}

// expT3: precision/recall of every detector on three workload families.
// The family x detector x seed grid is one flat trial list for the
// parallel driver; rows aggregate in grid order.
func expT3() {
	families := []struct {
		name string
		mk   func() workload.Workload
	}{
		{"random-50r", func() workload.Workload {
			return workload.Random(workload.RandomSpec{Procs: 4, Areas: 4, AreaWords: 2, OpsPerProc: 20, ReadPercent: 50})
		}},
		{"random-locked", func() workload.Workload {
			return workload.Random(workload.RandomSpec{Procs: 4, Areas: 4, AreaWords: 2, OpsPerProc: 15, ReadPercent: 50, LockDiscipline: true})
		}},
		{"stencil-buggy", func() workload.Workload { return workload.StencilBuggy(4, 4, 3) }},
	}
	dets := []string{"vw-exact", "vw", "single-clock", "epoch", "lockset"}
	const seeds = 5
	scores := parTrials(len(families)*len(dets)*seeds, func(i int) (verify.Score, error) {
		fam := families[i/(len(dets)*seeds)]
		det := dets[(i/seeds)%len(dets)]
		seed := int64(i%seeds) + 1
		return scoreWorkload(fam.mk(), det, seed)
	})
	i := 0
	for _, fam := range families {
		tb := stats.NewTable("workload "+fam.name,
			"detector", "TP", "FP", "FN", "precision", "recall")
		for _, det := range dets {
			var tp, fp, fn int
			for s := 0; s < seeds; s++ {
				tp += scores[i].TP
				fp += scores[i].FP
				fn += scores[i].FN
				i++
			}
			prec, rec := 1.0, 1.0
			if tp+fp > 0 {
				prec = float64(tp) / float64(tp+fp)
			}
			if tp+fn > 0 {
				rec = float64(tp) / float64(tp+fn)
			}
			tb.Row(det, tp, fp, fn, prec, rec)
		}
		fmt.Print(tb)
	}
	fmt.Println("claim check: vw-exact is exact; paper-mode vw trades a little recall for the figures' home tick; single-clock floods false positives on reads; lockset is schedule-insensitive (flags locked-free orderings).")
}

// expT4: overhead of detection vs cluster size.
func expT4() {
	tb := stats.NewTable("random workload, 30 ops/proc, 50% reads",
		"procs", "detector", "virtual time", "msgs", "wire bytes", "clock bytes share")
	for _, n := range []int{2, 4, 8, 16, 32} {
		for _, det := range []string{"off", "vw-exact"} {
			w := workload.Random(workload.RandomSpec{Procs: n, Areas: 2 * n, AreaWords: 4, OpsPerProc: 30, ReadPercent: 50})
			res := must(w.Run(dsm.Config{Seed: 1, RDMA: rdma.DefaultConfig(detectorOf(det), nil)}))
			share := 0.0
			if det != "off" {
				clockB := 2 + 8*uint64(n)
				share = float64(res.NetStats.TotalMsgs*clockB) / float64(res.NetStats.TotalBytes)
			}
			tb.Row(n, det, res.Duration.String(), res.NetStats.TotalMsgs, res.NetStats.TotalBytes, share)
		}
	}
	fmt.Print(tb)
	fmt.Println("claim check: piggybacked detection adds zero messages; the byte overhead grows linearly with n, which is why the paper pitches detection as a ~10-process debugging tool (§V-A).")
}

// expT5: the benign master-worker race.
func expT5() {
	w := workload.MasterWorker(6, 5)
	res := must(w.Run(dsm.Config{Seed: 3, RDMA: rdma.DefaultConfig(detectorOf("vw-exact"), nil)}))
	tb := stats.NewTable("master-worker, 5 workers x 5 results", "metric", "value")
	tb.Row("races signalled", res.RaceCount)
	tb.Row("program errors", fmt.Sprint(res.FirstError()))
	tb.Row("master's total", res.Memory[0][0])
	tb.Row("expected total", 25)
	tb.Row("run completed", res.Duration.String())
	fmt.Print(tb)
	fmt.Println("claim check: races are signalled but execution is never aborted; the master still collects the exact total (§IV-D).")
}

// expT6: false-positive rate vs read ratio, the grid flattened for the
// parallel driver.
func expT6() {
	readPcts := []int{0, 25, 50, 75, 90, 100}
	dets := []string{"vw-exact", "single-clock"}
	const seeds = 3
	scores := parTrials(len(readPcts)*len(dets)*seeds, func(i int) (verify.Score, error) {
		readPct := readPcts[i/(len(dets)*seeds)]
		det := dets[(i/seeds)%len(dets)]
		seed := int64(i%seeds) + 1
		w := workload.Random(workload.RandomSpec{Procs: 4, Areas: 4, AreaWords: 2, OpsPerProc: 20, ReadPercent: readPct})
		return scoreWorkload(w, det, seed)
	})
	tb := stats.NewTable("flags vs exact truth across read ratios (4 procs, 20 ops/proc, 3 seeds)",
		"read %", "detector", "flags", "true racy accesses", "false positives")
	i := 0
	for _, readPct := range readPcts {
		for _, det := range dets {
			var flags, racy, fp int
			for s := 0; s < seeds; s++ {
				flags += scores[i].Flagged
				racy += scores[i].TP + scores[i].FN
				fp += scores[i].FP
				i++
			}
			tb.Row(readPct, det, flags, racy, fp)
		}
	}
	fmt.Print(tb)
	fmt.Println("claim check: the single clock's false positives grow with the read share and peak on read-only workloads, where vw stays at zero — the refinement W buys (§IV-D).")
}

// expT7: one-sided vs collective reduction.
func expT7() {
	const n = 8
	oneSided := func() (uint64, string) {
		names := make([]string, n)
		spec := dsmrace.RunSpec{Procs: n, Seed: 1,
			Setup: func(c *dsmrace.Cluster) error {
				for i := range names {
					names[i] = fmt.Sprintf("part%d", i)
					if err := c.Alloc(names[i], i, 8); err != nil {
						return err
					}
				}
				return nil
			}}
		progs := make([]dsmrace.Program, n)
		progs[0] = func(p *dsmrace.Proc) error {
			_, err := p.ReduceOneSided(names, dsmrace.OpSum)
			return err
		}
		spec.Programs = progs
		res := must(dsmrace.Run(spec))
		return res.NetStats.TotalMsgs, res.Duration.String()
	}
	collective := func() (uint64, string) {
		spec := dsmrace.RunSpec{Procs: n, Seed: 1,
			Setup: func(c *dsmrace.Cluster) error { return c.Alloc("scratch", 0, n+1) }}
		spec.Program = func(p *dsmrace.Proc) error {
			_, err := p.ReduceCollective("scratch", dsmrace.Word(p.ID()), dsmrace.OpSum, 0)
			return err
		}
		res := must(dsmrace.Run(spec))
		return res.NetStats.TotalMsgs, res.Duration.String()
	}
	m1, d1 := oneSided()
	m2, d2 := collective()
	tb := stats.NewTable(fmt.Sprintf("global sum over %d nodes", n),
		"variant", "messages", "virtual time", "other processes involved")
	tb.Row("one-sided (§V-B)", m1, d1, "no — pure gets")
	tb.Row("collective", m2, d2, "yes — all put, barrier x2, all get")
	fmt.Print(tb)
	fmt.Println("claim check: the paper's future-work reduction works with zero participation from data owners; the collective costs barrier traffic from every process.")
}

// expT8: schedule divergence across seeds.
func expT8() {
	mkRacy := dsmrace.RunSpec{
		Procs: 3, Detector: "vw-exact",
		Setup:   func(c *dsmrace.Cluster) error { return c.Alloc("x", 0, 1) },
		Program: func(p *dsmrace.Proc) error { return p.Put("x", 0, dsmrace.Word(p.ID()+1)) },
	}
	mkClean := dsmrace.RunSpec{
		Procs: 3, Detector: "vw-exact",
		Setup: func(c *dsmrace.Cluster) error { return c.Alloc("x", 0, 1) },
		Program: func(p *dsmrace.Proc) error {
			if p.ID() == 0 {
				if err := p.Put("x", 0, 9); err != nil {
					return err
				}
			}
			p.Barrier()
			_, err := p.GetWord("x", 0)
			return err
		},
	}
	tb := stats.NewTable("16-seed sweep with 30% latency jitter",
		"program", "distinct final states", "diverged", "total races signalled")
	racy := must(dsmrace.ExploreSchedulesParallel(mkRacy, dsmrace.SeedRange(16), *par))
	clean := must(dsmrace.ExploreSchedulesParallel(mkClean, dsmrace.SeedRange(16), *par))
	tb.Row("3 unsynchronised writers", racy.DistinctStates(), racy.Diverged(), racy.TotalRaces())
	tb.Row("barrier-ordered write/read", clean.DistinctStates(), clean.Diverged(), clean.TotalRaces())
	fmt.Print(tb)
	fmt.Println("claim check: §III-C's operational definition — the racy program's result depends on the schedule, and exactly that program is the one the detector flags.")
}

// expT9: what truncated clocks (size k < n) do to detection.
func expT9() {
	const n, seed = 6, 4
	w := workload.Random(workload.RandomSpec{Procs: n, Areas: 3, AreaWords: 2, OpsPerProc: 15, ReadPercent: 40})
	res := must(w.Run(dsm.Config{Seed: seed, Trace: true, RDMA: rdma.DefaultConfig(detectorOf("vw-exact"), nil)}))
	truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())

	tb := stats.NewTable(fmt.Sprintf("clock size ablation, n=%d procs, %d true racing pairs", n, len(truth.Pairs)),
		"clock size k", "races still visible", "missed (falsely ordered)")
	for k := n; k >= 1; k-- {
		visible, missed := 0, 0
		for _, pr := range truth.Pairs {
			a := truth.Clocks[pr.A].Truncate(k)
			b := truth.Clocks[pr.B].Truncate(k)
			if vclock.ConcurrentWith(a, b) {
				visible++
			} else {
				missed++
			}
		}
		tb.Row(k, visible, missed)
	}
	fmt.Print(tb)
	fmt.Println("claim check: with fewer than n components concurrent pairs collapse into false orderings — Charron-Bost's lower bound (§IV-C) is why the clocks cannot shrink.")
}

// expT10: protocol x granularity x home-tick ablations on one workload.
func expT10() {
	tb := stats.NewTable("put-storm ablations (3 procs, 10 puts each to one hot variable + 1 private variable each)",
		"protocol", "granularity", "detector", "msgs", "flags", "precision", "recall")
	for _, proto := range []string{"piggyback", "literal"} {
		for _, gran := range []string{"area", "node"} {
			for _, det := range []string{"vw-exact", "vw"} {
				spec := dsmrace.RunSpec{
					Procs: 3, Seed: 2, Detector: det, Protocol: proto, Granularity: gran, Trace: true,
					Setup: func(c *dsmrace.Cluster) error {
						if err := c.Alloc("hot", 0, 1); err != nil {
							return err
						}
						for i := 0; i < 3; i++ {
							if err := c.Alloc(fmt.Sprintf("own%d", i), 0, 1); err != nil {
								return err
							}
						}
						return nil
					},
					Program: func(p *dsmrace.Proc) error {
						for i := 0; i < 10; i++ {
							if err := p.Put("hot", 0, dsmrace.Word(i)); err != nil {
								return err
							}
							if err := p.Put(fmt.Sprintf("own%d", p.ID()), 0, dsmrace.Word(i)); err != nil {
								return err
							}
						}
						return nil
					},
				}
				res := must(dsmrace.Run(spec))
				// The literal protocol follows the paper's algorithms, which
				// never merge the home clock back into the writer; ground
				// truth must replay the same absorption semantics.
				opt := verify.DefaultOptions()
				if proto == "literal" {
					opt.AbsorbOnPutAck = false
				}
				truth := verify.GroundTruth(res.Trace, opt)
				s := verify.ScoreReports(truth, det, res.Races)
				tb.Row(proto, gran, det, res.NetStats.TotalMsgs, res.RaceCount, s.Precision, s.Recall)
			}
		}
	}
	fmt.Print(tb)
	fmt.Println("claim check: node granularity (the figures' model) also flags the per-process 'own' variables, which share the hot variable's home clock; the literal protocol multiplies messages 6.5x; without completion absorption (the paper's algorithms) more operation pairs are genuinely concurrent, so the flag counts rise with the true race population.")
}

// expT11: the cost of "a clock per shared piece of data" depends on how big
// a piece is. Processes write disjoint slots of one shared array: at the
// model's area granularity every pair is a race; at word granularity none
// is. Splitting the array into per-slot areas removes the false sharing at
// the price of n clock pairs.
func expT11() {
	const n = 4
	runSlots := func(split bool, gran string) (flags int, areaPairs, wordPairs int, storage int) {
		spec := dsmrace.RunSpec{
			Procs: n, Seed: 2, Detector: "vw-exact", Granularity: gran, Trace: true,
			Setup: func(c *dsmrace.Cluster) error {
				if split {
					for i := 0; i < n; i++ {
						if err := c.Alloc(fmt.Sprintf("slot%d", i), 0, 1); err != nil {
							return err
						}
					}
					return nil
				}
				return c.Alloc("slots", 0, n)
			},
			Program: func(p *dsmrace.Proc) error {
				for it := 0; it < 5; it++ {
					var err error
					if split {
						err = p.Put(fmt.Sprintf("slot%d", p.ID()), 0, dsmrace.Word(it))
					} else {
						err = p.Put("slots", p.ID(), dsmrace.Word(it))
					}
					if err != nil {
						return err
					}
				}
				return nil
			},
		}
		res := must(dsmrace.Run(spec))
		at := verify.GroundTruth(res.Trace, verify.DefaultOptions())
		wt := verify.GroundTruth(res.Trace, verify.WordLevelOptions())
		return res.RaceCount, len(at.Pairs), len(wt.Pairs), res.StorageBytes
	}
	tb := stats.NewTable("4 procs x 5 disjoint-slot writes",
		"layout / clock granularity", "detector flags", "area-level true pairs", "word-level true pairs", "clock bytes")
	f, ap, wp, st := runSlots(false, "area")
	tb.Row("one area, area clocks", f, ap, wp, st)
	f, ap, wp, st = runSlots(false, "word")
	tb.Row("one area, word clocks", f, ap, wp, st)
	f, ap, wp, st = runSlots(true, "area")
	tb.Row("4 areas, 1 slot each", f, ap, wp, st)
	fmt.Print(tb)
	fmt.Println("claim check: per-area clocks flag disjoint-slot writes (false sharing) — word-level truth shows zero real races; word-granularity clocks (or splitting the variable) remove every flag at n-fold clock storage. This is the granularity face of §V-A's 'a clock must be used for each shared piece of data'.")
}

// expT12: the coherence-protocol axis. Each workload runs under
// write-update and write-invalidate with the exact detector; the table
// shows the wire cost (including the replica traffic network statistics
// alone cannot attribute: fetches, hits, invalidations) next to the
// detector's coverage against ground truth — because under
// write-invalidate a cache hit reaches no home, and an access the home
// never sees is an access the online detector cannot check.
func expT12() {
	wls := []struct {
		name string
		mk   func() workload.Workload
	}{
		{"migratory", func() workload.Workload { return workload.Migratory(4, 8, 8) }},
		{"prodchain", func() workload.Workload { return workload.ProducerConsumerChain(4, 6, 8, 4) }},
		{"stencil1d", func() workload.Workload { return workload.Stencil1D(4, 4, 3) }},
		{"pipeline", func() workload.Workload { return workload.Pipeline(4, 2) }},
		{"random-50r", func() workload.Workload {
			return workload.Random(workload.RandomSpec{Procs: 4, Areas: 4, AreaWords: 2, OpsPerProc: 20, ReadPercent: 50})
		}},
	}
	cohs := []string{"write-update", "write-invalidate"}
	type cell struct {
		res   *dsm.Result
		score verify.Score
		pairs string // sync-only ground-truth pair fingerprint
	}
	cells := parTrials(len(wls)*len(cohs), func(i int) (cell, error) {
		w := wls[i/len(cohs)].mk()
		cp, err := coherence.FromName(cohs[i%len(cohs)])
		if err != nil {
			return cell{}, err
		}
		cfg := rdma.DefaultConfig(detectorOf("vw-exact"), nil)
		cfg.Coherence = cp
		res, err := w.Run(dsm.Config{Seed: 1, Trace: true, RDMA: cfg})
		if err != nil {
			return cell{}, err
		}
		truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())
		sync := verify.GroundTruth(res.Trace, verify.SyncOnlyOptions())
		return cell{
			res:   res,
			score: verify.ScoreReports(truth, "vw-exact", res.Races),
			pairs: fmt.Sprint(sync.Pairs),
		}, nil
	})
	tb := stats.NewTable("coherence protocol comparison (vw-exact, seed 1)",
		"workload", "coherence", "msgs", "wire bytes", "fetch/hit/inval", "flags", "recall")
	for i, c := range cells {
		ch := c.res.Coherence
		tb.Row(wls[i/len(cohs)].name, cohs[i%len(cohs)],
			c.res.NetStats.TotalMsgs, c.res.NetStats.TotalBytes,
			fmt.Sprintf("%d/%d/%d", ch.Fetches, ch.Hits, ch.Invalidations),
			c.res.RaceCount, c.score.Recall)
	}
	fmt.Print(tb)
	// The deterministic workloads also prove protocol equivalence at the
	// ground-truth level: identical sync-only race sets under both
	// protocols (the same property the test suite asserts on every seed
	// workload).
	for i, w := range wls {
		if w.name == "pipeline" || w.name == "random-50r" {
			continue // timing-dependent access streams: compared in-suite at area/profile level
		}
		same := cells[i*len(cohs)].pairs == cells[i*len(cohs)+1].pairs
		fmt.Printf("ground-truth equivalence [%s]: %v\n", w.name, same)
	}
	fmt.Println("claim check: migration is write-update's best case (write-invalidate pays a whole-area fetch plus an invalidation round per ownership hop); repeated consumption is write-invalidate's (re-reads are message-free cache hits). The races a program contains are protocol-invariant — but the detector's recall drops under write-invalidate exactly where reads stop reaching the home.")
}
