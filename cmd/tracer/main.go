// Command tracer inspects, verifies and converts execution traces recorded
// by the DSM runtime.
//
// Usage:
//
//	tracer -in run.json -verify           # exact ground truth of a trace
//	tracer -in run.json -stats            # event statistics
//	tracer -in run.json -out run.gob      # convert between JSON and gob
//	tracer -in run.json -dump -limit 20   # print events
//	tracer -in run.json -replay vw        # run an online detector over the trace
//	tracer -in run.json -lockorder        # potential-deadlock analysis of user locks
//	tracer -in run.json -timeline -replay vw  # space-time diagram, races marked
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dsmrace"
	"dsmrace/internal/stats"
	"dsmrace/internal/trace"
	"dsmrace/internal/verify"
)

func main() {
	var (
		in       = flag.String("in", "", "input trace (.json or .gob)")
		out      = flag.String("out", "", "convert: output path (.json or .gob)")
		doStats  = flag.Bool("stats", false, "print event statistics")
		doVer    = flag.Bool("verify", false, "compute exact ground truth")
		dump     = flag.Bool("dump", false, "print events")
		limit    = flag.Int("limit", 50, "max events/pairs to print")
		replay   = flag.String("replay", "", "replay an online detector over the trace (vw, vw-exact, single-clock, lockset, epoch)")
		lockord  = flag.Bool("lockorder", false, "analyse user-lock acquisition order for potential deadlocks")
		timeline = flag.Bool("timeline", false, "render a Fig.5-style space-time diagram (race-marked when combined with -replay)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "tracer: -in is required")
		os.Exit(2)
	}
	tr, err := read(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
	fmt.Printf("trace: label=%q procs=%d seed=%d events=%d\n", tr.Label, tr.Procs, tr.Seed, len(tr.Events))

	if *doStats {
		counts := map[string]int{}
		perProc := make([]int, tr.Procs)
		for _, e := range tr.Events {
			counts[e.Kind.String()]++
			if e.Proc < len(perProc) {
				perProc[e.Proc]++
			}
		}
		tb := stats.NewTable("event kinds", "kind", "count")
		for _, k := range []string{"put", "get", "atomic", "lock", "unlock", "barrier"} {
			if counts[k] > 0 {
				tb.Row(k, counts[k])
			}
		}
		fmt.Print(tb)
		tb2 := stats.NewTable("events per process", "proc", "events")
		for i, n := range perProc {
			tb2.Row(i, n)
		}
		fmt.Print(tb2)
	}

	if *dump {
		for i, e := range tr.Events {
			if i >= *limit {
				fmt.Printf("... %d more\n", len(tr.Events)-i)
				break
			}
			fmt.Println(" ", e)
		}
	}

	if *doVer {
		gt := verify.GroundTruth(tr, verify.DefaultOptions())
		fmt.Printf("ground truth: %d accesses, %d conflicting pairs, %d racing pairs, %d racy accesses\n",
			gt.Accesses, gt.ConflictPairs, len(gt.Pairs), len(gt.Racy))
		for i, p := range gt.Pairs {
			if i >= *limit {
				fmt.Printf("... %d more\n", len(gt.Pairs)-i)
				break
			}
			fmt.Printf("  race: %v x %v on area %d\n", p.A, p.B, p.Area)
		}
	}

	var marker func(proc int, seq uint64) bool
	if *replay != "" {
		det, err := dsmrace.NewDetector(*replay)
		if err != nil || det == nil {
			fmt.Fprintf(os.Stderr, "tracer: bad detector %q: %v\n", *replay, err)
			os.Exit(2)
		}
		reports := verify.ReplayDetector(tr, det, verify.DefaultOptions())
		fmt.Printf("replay[%s]: %d race flags\n", *replay, len(reports))
		for i, r := range reports {
			if i >= *limit {
				fmt.Printf("... %d more\n", len(reports)-i)
				break
			}
			fmt.Println(" ", r)
		}
		flagged := make(map[[2]uint64]bool, len(reports))
		for _, r := range reports {
			flagged[[2]uint64{uint64(r.Current.Proc), r.Current.Seq}] = true
		}
		marker = func(proc int, seq uint64) bool { return flagged[[2]uint64{uint64(proc), seq}] }
	}

	if *timeline {
		fmt.Print(trace.RenderTimeline(tr, trace.RenderOptions{
			MaxEvents:  *limit,
			Marker:     marker,
			ShowClocks: true,
		}))
	}

	if *lockord {
		findings := verify.LockOrder(tr)
		fmt.Printf("lock-order analysis: %d potential deadlock(s)\n", len(findings))
		for _, f := range findings {
			fmt.Println(" ", f)
		}
	}

	if *out != "" {
		if err := write(tr, *out); err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		fmt.Printf("written to %s\n", *out)
	}
}

func read(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gob") {
		return trace.ReadGob(f)
	}
	return trace.ReadJSON(f)
}

func write(tr *trace.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gob") {
		return tr.WriteGob(f)
	}
	return tr.WriteJSON(f)
}
