// Command dsmrace runs a named workload on the simulated DSM cluster with
// a chosen race detector and prints the signalled races, traffic and
// coherence statistics and (optionally) the exact ground truth.
//
// Usage:
//
//	dsmrace -workload master-worker -procs 6 -detector vw
//	dsmrace -workload stencil-buggy -detector vw-exact -truth
//	dsmrace -workload random -read 80 -ops 200 -detector single-clock
//	dsmrace -workload migratory -coherence write-invalidate
package main

import (
	"flag"
	"fmt"
	"os"

	"dsmrace"
	coherencepkg "dsmrace/internal/coherence"
	"dsmrace/internal/dsm"
	"dsmrace/internal/rdma"
	"dsmrace/internal/trace"
	"dsmrace/internal/verify"
	"dsmrace/internal/workload"
)

func main() {
	var (
		name      = flag.String("workload", "master-worker", "workload: master-worker, stencil, stencil-buggy, histogram, histogram-racy, prodcons, random, random-locked, pipeline, migratory, prodchain")
		procs     = flag.Int("procs", 4, "number of processes")
		detector  = flag.String("detector", "vw", "detector: vw, vw-exact, single-clock, lockset, epoch, off")
		protocol  = flag.String("protocol", "piggyback", "wire protocol: piggyback or literal")
		coherence = flag.String("coherence", "write-update", "coherence protocol: write-update or write-invalidate")
		seed      = flag.Int64("seed", 1, "simulation seed")
		ops       = flag.Int("ops", 50, "operations per process (random workloads)")
		readPct   = flag.Int("read", 50, "read percentage (random workloads)")
		truth     = flag.Bool("truth", false, "compute exact ground truth and score the detector")
		traceOut  = flag.String("trace", "", "write the execution trace (JSON) to this file")
		maxRaces  = flag.Int("max-races", 10, "print at most this many race reports")
		kernels   = flag.Int("kernels", 1, "kernel shards for partitioned multi-kernel execution (bit-identical to 1; serial-only workloads degrade)")
	)
	flag.Parse()

	w, err := pick(*name, *procs, *ops, *readPct)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrace:", err)
		os.Exit(2)
	}
	det, err := dsmrace.NewDetector(*detector)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrace:", err)
		os.Exit(2)
	}
	rcfg := rdma.DefaultConfig(det, nil)
	switch *protocol {
	case "", "piggyback":
	case "literal":
		rcfg.Protocol = rdma.ProtocolLiteral
	default:
		fmt.Fprintf(os.Stderr, "dsmrace: unknown wire protocol %q (want piggyback or literal)\n", *protocol)
		os.Exit(2)
	}
	coh, err := coherencepkg.FromName(*coherence)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrace:", err)
		os.Exit(2)
	}
	if coh.CachesRemoteReads() && rcfg.Protocol == rdma.ProtocolLiteral {
		fmt.Fprintf(os.Stderr, "dsmrace: %s requires the piggyback wire protocol\n", coh.Name())
		os.Exit(2)
	}
	rcfg.Coherence = coh
	needTrace := *truth || *traceOut != ""
	res, err := w.Run(dsm.Config{Seed: *seed, RDMA: rcfg, Trace: needTrace, Kernels: *kernels})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrace: run:", err)
		if res == nil {
			os.Exit(1)
		}
	}

	fmt.Printf("workload=%s procs=%d detector=%s protocol=%s coherence=%s seed=%d profile=%s\n",
		w.Name, w.Procs, *detector, *protocol, coh.Name(), *seed, w.Profile)
	fmt.Printf("virtual time: %v   events: %d\n", res.Duration, res.Events)
	if *kernels > 1 {
		note := ""
		if res.KernelNote != "" {
			note = " (" + res.KernelNote + ")"
		}
		fmt.Fprintf(os.Stderr, "kernels: %d%s\n", res.Kernels, note)
	}
	fmt.Printf("traffic: %v\n", res.NetStats)
	if coh.CachesRemoteReads() {
		ch := res.Coherence
		fmt.Printf("coherence: fetches=%d hits=%d home-reads=%d invalidations=%d\n",
			ch.Fetches, ch.Hits, ch.HomeReads, ch.Invalidations)
	}
	fmt.Printf("detection state: %d bytes\n", res.StorageBytes)
	fmt.Printf("races signalled: %d\n", res.RaceCount)
	for i, r := range res.Races {
		if i >= *maxRaces {
			fmt.Printf("  ... %d more\n", len(res.Races)-i)
			break
		}
		fmt.Printf("  %v\n", r)
	}

	if *truth {
		gt := verify.GroundTruth(res.Trace, verify.DefaultOptions())
		fmt.Printf("ground truth: %d racing pairs over %d accesses\n", len(gt.Pairs), gt.Accesses)
		score := verify.ScoreReports(gt, *detector, res.Races)
		fmt.Printf("score: %v\n", score)
	}
	if *traceOut != "" {
		if err := writeTrace(res.Trace, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "dsmrace: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events)\n", *traceOut, len(res.Trace.Events))
	}
}

func pick(name string, procs, ops, readPct int) (workload.Workload, error) {
	switch name {
	case "master-worker":
		return workload.MasterWorker(procs, ops/5+1), nil
	case "stencil":
		return workload.Stencil1D(procs, 8, 4), nil
	case "stencil-buggy":
		return workload.StencilBuggy(procs, 8, 4), nil
	case "histogram":
		return workload.Histogram(procs, 2*procs, ops), nil
	case "histogram-racy":
		return workload.HistogramRacy(procs, 2*procs, ops), nil
	case "prodcons":
		return workload.ProducerConsumer(procs/2, ops/5+1), nil
	case "random":
		return workload.Random(workload.RandomSpec{Procs: procs, Areas: 2 * procs, AreaWords: 4, OpsPerProc: ops, ReadPercent: readPct}), nil
	case "random-locked":
		return workload.Random(workload.RandomSpec{Procs: procs, Areas: 2 * procs, AreaWords: 4, OpsPerProc: ops, ReadPercent: readPct, LockDiscipline: true}), nil
	case "pipeline":
		return workload.Pipeline(procs, ops/10+1), nil
	case "migratory":
		return workload.Migratory(procs, ops/5+1, 8), nil
	case "prodchain":
		return workload.ProducerConsumerChain(procs, ops/10+1, 8, 4), nil
	default:
		return workload.Workload{}, fmt.Errorf("unknown workload %q", name)
	}
}

func writeTrace(tr *trace.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteJSON(f)
}
