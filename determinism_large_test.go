package dsmrace

import (
	"fmt"
	"testing"

	"dsmrace/internal/coherence"
	"dsmrace/internal/dsm"
	"dsmrace/internal/rdma"
	"dsmrace/internal/workload"
)

// largeGolden pins fixed-seed fingerprints at cluster size 64 — the
// large-n counterpart of goldenRuns and coherenceGoldenRuns. These were
// captured from the PR-2 tree (dense clocks, container/heap kernel, eager
// memory segments) and must stay bit-identical under the masked-clock
// representation, the timing-wheel kernel, the lazily-backed memory and
// every absorb-elision shortcut: the scale work is only allowed to make
// runs faster, never different. CI gates this alongside the T12 diff.
type largeGolden struct {
	name, det, coh string
	races          int
	dur            int64
	msgs, bytes    uint64
	fetches, hits  uint64
	invals         uint64
	hash           string
}

var largeGoldenRuns = []largeGolden{
	{"random64/vw/wu", "vw", "write-update", 1011, 95856, 2816, 1547776, 0, 0, 0, "0682ddcc2dc12b4a"},
	{"random64/vw-exact/wu", "vw-exact", "write-update", 1013, 95856, 2816, 1547776, 0, 0, 0, "68ffbda30a621456"},
	{"migratory64/vw-exact/wu", "vw-exact", "write-update", 0, 3236400, 1792, 879102, 0, 0, 0, "e3b0c44298fc1c14"},
	{"migratory64/vw-exact/wi", "vw-exact", "write-invalidate", 0, 4005464, 2286, 890542, 252, 0, 251, "e3b0c44298fc1c14"},
	{"prodchain64/vw-exact/wu", "vw-exact", "write-update", 0, 107860, 3840, 2182656, 0, 0, 0, "e3b0c44298fc1c14"},
	{"prodchain64/vw-exact/wi", "vw-exact", "write-invalidate", 0, 70244, 2816, 1311232, 256, 768, 256, "e3b0c44298fc1c14"},
	{"migratory64/vw-exact/causal", "vw-exact", "causal", 0, 2461626, 15077, 2225340, 63, 189, 0, "e3b0c44298fc1c14"},
	{"migratory64/vw-exact/mesi", "vw-exact", "mesi", 0, 4786436, 2786, 921514, 252, 0, 251, "e3b0c44298fc1c14"},
	{"prodchain64/vw-exact/causal", "vw-exact", "causal", 0, 55294, 2176, 2023680, 64, 960, 0, "e3b0c44298fc1c14"},
	{"prodchain64/vw-exact/mesi", "vw-exact", "mesi", 0, 82500, 3328, 1327616, 256, 768, 256, "e3b0c44298fc1c14"},
}

func largeGoldenWorkload(name string) workload.Workload {
	switch name {
	case "migratory64/vw-exact/wu", "migratory64/vw-exact/wi",
		"migratory64/vw-exact/causal", "migratory64/vw-exact/mesi":
		return workload.Migratory(64, 4, 8)
	case "prodchain64/vw-exact/wu", "prodchain64/vw-exact/wi",
		"prodchain64/vw-exact/causal", "prodchain64/vw-exact/mesi":
		return workload.ProducerConsumerChain(64, 4, 8, 4)
	default:
		return workload.Random(workload.RandomSpec{
			Procs: 64, Areas: 96, AreaWords: 4, OpsPerProc: 20, ReadPercent: 40,
			BarrierEvery: 10,
		})
	}
}

// TestDeterminismLargeClusterFingerprints verifies 64-node fixed-seed runs
// are bit-identical to the pre-scale-work implementation, under both
// coherence protocols — and, since PR 5, at every multi-kernel shard count:
// the partitioned run must reproduce the same golden hashes the single
// kernel pins (shared-RNG workloads degrade to one kernel by declaration
// and must still match trivially).
func TestDeterminismLargeClusterFingerprints(t *testing.T) {
	for _, g := range largeGoldenRuns {
		g := g
		t.Run(g.name, func(t *testing.T) {
			for _, kernels := range []int{0, 1, 2, 4, 8} {
				// At the deepest shard count the window machinery is swept
				// too: default (adaptive extension on), the pre-adaptive
				// one-lookahead synchronous mode, and forced pipelining must
				// all reproduce the same golden hash.
				type winMode struct {
					name      string
					ext, pipe int
				}
				modes := []winMode{{"default", 0, 0}}
				if kernels == 8 {
					modes = append(modes,
						winMode{"legacy-windows", 1, -1},
						winMode{"forced-pipeline", 0, 1})
				}
				for _, mode := range modes {
					d, err := NewDetector(g.det)
					if err != nil {
						t.Fatal(err)
					}
					cp, err := coherence.FromName(g.coh)
					if err != nil {
						t.Fatal(err)
					}
					cfg := rdma.DefaultConfig(d, nil)
					cfg.Coherence = cp
					res, err := largeGoldenWorkload(g.name).Run(dsm.Config{
						Seed: 1, RDMA: cfg, Kernels: kernels,
						WindowExtension: mode.ext, PipelinedReplay: mode.pipe,
					})
					if err != nil {
						t.Fatal(err)
					}
					got := fmt.Sprintf("races=%d dur=%d msgs=%d bytes=%d fetches=%d hits=%d invals=%d hash=%s",
						res.RaceCount, int64(res.Duration), res.NetStats.TotalMsgs, res.NetStats.TotalBytes,
						res.Coherence.Fetches, res.Coherence.Hits, res.Coherence.Invalidations, reportHash(res))
					want := fmt.Sprintf("races=%d dur=%d msgs=%d bytes=%d fetches=%d hits=%d invals=%d hash=%s",
						g.races, g.dur, g.msgs, g.bytes, g.fetches, g.hits, g.invals, g.hash)
					if got != want {
						t.Errorf("kernels=%d %s: fingerprint drift:\n got  %s\n want %s", kernels, mode.name, got, want)
					}
				}
			}
		})
	}
}
