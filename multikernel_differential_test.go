package dsmrace

import (
	"fmt"
	"testing"

	"dsmrace/internal/coherence"
	"dsmrace/internal/dsm"
	"dsmrace/internal/network"
	"dsmrace/internal/rdma"
	"dsmrace/internal/workload"
)

// multiFingerprint extends runFingerprint with everything else a partition
// could plausibly disturb: coherence counters and the final memory image.
type multiFingerprint struct {
	runFingerprint
	coh     CoherenceStats
	memory  string
	kernels int
}

func multiFingerprintOf(res *Result) multiFingerprint {
	mem := ""
	for node, words := range res.Memory {
		for off, w := range words {
			if w != 0 {
				mem += fmt.Sprintf("%d:%d=%d;", node, off, w)
			}
		}
	}
	return multiFingerprint{
		runFingerprint: fingerprintOf(res),
		coh:            res.Coherence,
		memory:         mem,
		kernels:        res.Kernels,
	}
}

// multiDiffSchedules are the adversarial schedules of the multi-kernel
// differential: every transport/detector mode whose bookkeeping the
// partition had to reshape (sharded pools, per-shard CompressClocks decoder
// state, write-invalidate directory fan-out, causal update fan-out with
// dependency clocks, MESI exclusive grants and cross-shard recalls, the
// literal protocol's five-hop chains, deferred-jitter replay), over workloads whose traffic
// crosses shards (migratory: one global lock ring), stays mostly local
// (groups), and mixes barriers with caching (prodchain).
var multiDiffSchedules = []struct {
	name string
	mk   func() workload.Workload
	mut  func(*rdma.Config)
	jit  float64
}{
	{name: "migratory/wu", mk: func() workload.Workload { return workload.Migratory(24, 4, 8) }},
	{name: "migratory/wi", mk: func() workload.Workload { return workload.Migratory(24, 4, 8) },
		mut: func(c *rdma.Config) { c.Coherence = mustCoherence("write-invalidate") }},
	{name: "migratory/causal", mk: func() workload.Workload { return workload.Migratory(24, 4, 8) },
		mut: func(c *rdma.Config) { c.Coherence = mustCoherence("causal") }},
	{name: "migratory/mesi", mk: func() workload.Workload { return workload.Migratory(24, 4, 8) },
		mut: func(c *rdma.Config) { c.Coherence = mustCoherence("mesi") }},
	{name: "migratory/jitter", mk: func() workload.Workload { return workload.Migratory(24, 4, 8) }, jit: 0.3},
	{name: "migratory/literal", mk: func() workload.Workload { return workload.Migratory(16, 3, 4) },
		mut: func(c *rdma.Config) { c.Protocol = rdma.ProtocolLiteral }},
	{name: "migratory/compress", mk: func() workload.Workload { return workload.Migratory(24, 4, 8) },
		mut: func(c *rdma.Config) { c.CompressClocks = true }},
	{name: "migratory/no-absorb", mk: func() workload.Workload { return workload.Migratory(24, 4, 8) },
		mut: func(c *rdma.Config) { c.AbsorbOnGetReply = false; c.AbsorbOnPutAck = false }},
	{name: "groups/wu", mk: func() workload.Workload { return workload.MigratoryGroups(24, 4, 4, 8) }},
	{name: "groups/jitter", mk: func() workload.Workload { return workload.MigratoryGroups(24, 4, 4, 8) }, jit: 0.25},
	{name: "prodchain/wu", mk: func() workload.Workload { return workload.ProducerConsumerChain(12, 3, 8, 3) }},
	{name: "prodchain/wi", mk: func() workload.Workload { return workload.ProducerConsumerChain(12, 3, 8, 3) },
		mut: func(c *rdma.Config) { c.Coherence = mustCoherence("write-invalidate") }},
	{name: "prodchain/causal", mk: func() workload.Workload { return workload.ProducerConsumerChain(12, 3, 8, 3) },
		mut: func(c *rdma.Config) { c.Coherence = mustCoherence("causal") }},
	{name: "prodchain/mesi", mk: func() workload.Workload { return workload.ProducerConsumerChain(12, 3, 8, 3) },
		mut: func(c *rdma.Config) { c.Coherence = mustCoherence("mesi") }},
	{name: "random/serial-degrade", mk: func() workload.Workload {
		return workload.Random(workload.RandomSpec{
			Procs: 12, Areas: 16, AreaWords: 4, OpsPerProc: 30, ReadPercent: 40, BarrierEvery: 10,
		})
	}},
}

func mustCoherence(name string) coherence.Protocol {
	p, err := coherence.FromName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// runMultiDiff executes one schedule on a given shard count (0 = the plain
// single kernel) and returns its fingerprint plus the cluster for pool
// audits.
func runMultiDiff(t *testing.T, sched int, kernels int, partition string, seed int64, opts ...func(*dsm.Config)) (multiFingerprint, *dsm.Cluster) {
	t.Helper()
	sc := multiDiffSchedules[sched]
	d, err := NewDetector("vw-exact")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rdma.DefaultConfig(d, nil)
	if sc.mut != nil {
		sc.mut(&cfg)
	}
	var lat network.LatencyModel
	if sc.jit > 0 {
		lat = network.Jitter{Base: network.DefaultIB(), Frac: sc.jit}
	}
	w := sc.mk()
	dcfg := dsm.Config{
		Procs: w.Procs, Seed: seed, Latency: lat, RDMA: cfg,
		Kernels: kernels, Partition: partition, Label: w.Name,
	}
	if w.SharedRand {
		dcfg.SerialOnly = true
	}
	if dcfg.LocalityGroup == 0 {
		dcfg.LocalityGroup = w.LocalityGroup
	}
	for _, opt := range opts {
		opt(&dcfg)
	}
	c, err := dsm.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(c); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunEach(w.Programs())
	if err != nil {
		t.Fatalf("kernels=%d: %v", kernels, err)
	}
	if ferr := res.FirstError(); ferr != nil {
		t.Fatalf("kernels=%d: %v", kernels, ferr)
	}
	if w.Check != nil {
		if err := w.Check(res); err != nil {
			t.Fatalf("kernels=%d: %v", kernels, err)
		}
	}
	return multiFingerprintOf(res), c
}

// TestMultiKernelFacade pins the RunSpec plumbing: a facade run with
// Kernels set executes sharded and matches the plain run bit-for-bit, and
// the worker budget helper divides GOMAXPROCS by the shard count.
func TestMultiKernelFacade(t *testing.T) {
	spec := RunSpec{
		Procs:    16,
		Seed:     5,
		Detector: "vw-exact",
		Setup:    func(c *Cluster) error { return c.Alloc("obj", 0, 8) },
		Program: func(p *Proc) error {
			for r := 0; r < 4; r++ {
				if err := p.Lock("obj"); err != nil {
					return err
				}
				if _, err := p.Get("obj", 0, 8); err != nil {
					p.Unlock("obj")
					return err
				}
				if err := p.Put("obj", 0, Word(p.ID())); err != nil {
					p.Unlock("obj")
					return err
				}
				if err := p.Unlock("obj"); err != nil {
					return err
				}
			}
			return nil
		},
	}
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Kernels = 4
	sharded, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Kernels != 4 {
		t.Fatalf("facade ran on %d kernels (note %q), want 4", sharded.Kernels, sharded.KernelNote)
	}
	if fingerprintOf(plain) != fingerprintOf(sharded) {
		t.Fatalf("facade sharded run diverged:\n plain   %+v\n sharded %+v",
			fingerprintOf(plain), fingerprintOf(sharded))
	}
	if w := ParallelismFor(4); w < 1 || w > Parallelism() {
		t.Fatalf("ParallelismFor(4) = %d outside [1, %d]", w, Parallelism())
	}
}

// TestPartitionKeepsGroupsIntraShard is the dsm-level half of the partition
// property test: with the locality-aware policy and the workload's declared
// group size, every MigratoryGroups ring lands inside one shard — its lock
// traffic never crosses a window barrier — and the assignment is a total
// partition of the cluster.
func TestPartitionKeepsGroupsIntraShard(t *testing.T) {
	const procs, group = 64, 8
	for _, kernels := range []int{2, 4, 8} {
		w := workload.MigratoryGroups(procs, group, 2, 4)
		d, err := NewDetector("vw-exact")
		if err != nil {
			t.Fatal(err)
		}
		c, err := dsm.New(dsm.Config{
			Procs: procs, Seed: 1, RDMA: rdma.DefaultConfig(d, nil),
			Kernels: kernels, Partition: "blocks", LocalityGroup: w.LocalityGroup,
		})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for g := 0; g < procs/group; g++ {
			first := c.ShardOf(g * group)
			for i := g * group; i < (g+1)*group; i++ {
				if s := c.ShardOf(i); s != first {
					t.Fatalf("kernels=%d: ring %d split across shards %d and %d", kernels, g, first, s)
				}
			}
			seen[first] = true
		}
		if len(seen) != kernels {
			t.Fatalf("kernels=%d: rings cover only %d shards", kernels, len(seen))
		}
	}
}

// TestMultiKernelDifferential is the tentpole gate: for K ∈ {1, 2, 4, 8},
// every fingerprint — race reports, virtual durations, event counts,
// per-kind message totals, coherence counters and the final memory image —
// of a partitioned multi-kernel run must be bit-identical to the
// single-kernel run, on every adversarial schedule, under both partition
// policies, and with every per-shard pool balance settling to zero.
// windowModes are the adaptive-window/pipelined-replay configurations the
// mode-sweep gates run beyond the defaults: the pre-adaptive behaviour
// (one-lookahead windows, synchronous replay) and the fully aggressive one
// (default extension, pipelining forced on even where auto would disable
// it). Every mode must produce bit-identical fingerprints.
var windowModes = []struct {
	name string
	opt  func(*dsm.Config)
}{
	{"legacy-windows", func(c *dsm.Config) { c.WindowExtension = 1; c.PipelinedReplay = -1 }},
	{"forced-pipeline", func(c *dsm.Config) { c.PipelinedReplay = 1 }},
}

// TestMultiKernelDifferentialModes re-runs every adversarial schedule with
// adaptive windows and pipelined replay forced off and forced on,
// asserting the fingerprints match the single-kernel reference at every
// shard count — the determinism gate for the window optimisations.
func TestMultiKernelDifferentialModes(t *testing.T) {
	for i, sc := range multiDiffSchedules {
		i, sc := i, sc
		t.Run(sc.name, func(t *testing.T) {
			want, _ := runMultiDiff(t, i, 0, "", 1)
			for _, mode := range windowModes {
				for _, k := range []int{1, 2, 4, 8} {
					got, c := runMultiDiff(t, i, k, "blocks", 1, mode.opt)
					g, w := got, want
					g.kernels, w.kernels = 0, 0
					if g != w {
						t.Fatalf("%s k=%d: fingerprints diverged:\n got  %+v\n want %+v", mode.name, k, g, w)
					}
					sys := c.System()
					for s := 0; s < sys.PoolShards(); s++ {
						if b := sys.PoolBalanceShard(s); b != (rdma.PoolBalance{}) {
							t.Fatalf("%s k=%d: pool shard %d unbalanced after clean run: %+v", mode.name, k, s, b)
						}
					}
				}
			}
		})
	}
}

func TestMultiKernelDifferential(t *testing.T) {
	for i, sc := range multiDiffSchedules {
		i, sc := i, sc
		t.Run(sc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 23} {
				want, _ := runMultiDiff(t, i, 0, "", seed)
				for _, k := range []int{1, 2, 4, 8} {
					for _, part := range []string{"blocks", "round-robin"} {
						got, c := runMultiDiff(t, i, k, part, seed)
						// Fingerprints compare without the shard count (a
						// degraded request legitimately reports 1).
						g, w := got, want
						g.kernels, w.kernels = 0, 0
						if g != w {
							t.Fatalf("seed %d k=%d %s: fingerprints diverged:\n got  %+v\n want %+v",
								seed, k, part, g, w)
						}
						sys := c.System()
						for s := 0; s < sys.PoolShards(); s++ {
							if b := sys.PoolBalanceShard(s); b != (rdma.PoolBalance{}) {
								t.Fatalf("seed %d k=%d %s: pool shard %d unbalanced after clean run: %+v",
									seed, k, part, s, b)
							}
						}
						if sc.name == "random/serial-degrade" && k > 1 && got.kernels != 1 {
							t.Fatalf("shared-RNG workload ran on %d kernels; must degrade to 1", got.kernels)
						}
					}
				}
			}
		})
	}
}
