package dsmrace

import (
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/rdma"
)

// TestReportClockInterningRotatingWriter is the rotating-writer
// microbenchmark for the collector's hash-consed report clocks: one writer
// rotates over the shared areas while every other process polls them with
// unsynchronised reads (absorption edges off, so every poll stays
// concurrent with the stored write clock). Between two writes, every racing
// read reports the *same* stored clock and the same prior write, so
// interning should collapse the bulk of the report storage — while leaving
// the reports themselves bit-identical to the non-interned collector.
func TestReportClockInterningRotatingWriter(t *testing.T) {
	const procs, areas, rounds = 16, 4, 40
	run := func(noIntern bool) (*Result, *core.Collector) {
		d, err := NewDetector("vw-exact")
		if err != nil {
			t.Fatal(err)
		}
		col := &core.Collector{NoIntern: noIntern}
		cfg := rdma.DefaultConfig(d, col)
		// The E-T10 ablation shape: no reply absorption, so readers never
		// catch up with the write clock and every poll reports.
		cfg.AbsorbOnGetReply = false
		cfg.AbsorbOnPutAck = false
		c, err := dsm.New(dsm.Config{Procs: procs, Seed: 11, RDMA: cfg})
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < areas; a++ {
			c.MustAlloc(area(a), a, 2)
		}
		res, err := c.Run(func(p *dsm.Proc) error {
			for i := 0; i < rounds; i++ {
				name := area(i % areas)
				if p.ID() == 0 {
					if err := p.Put(name, 0, Word(i)); err != nil {
						return err
					}
				} else if _, err := p.Get(name, 0, 1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, col
	}

	interned, col := run(false)
	plain, _ := run(true)
	if interned.RaceCount == 0 {
		t.Fatal("rotating-writer workload reported no races; the microbenchmark is broken")
	}
	if interned.RaceCount != plain.RaceCount {
		t.Fatalf("race counts differ: interned %d vs plain %d", interned.RaceCount, plain.RaceCount)
	}
	if a, b := reportHash(interned), reportHash(plain); a != b {
		t.Fatalf("interning changed report content: %s vs %s", a, b)
	}
	st := col.InternStats()
	if st.Refs == 0 || st.Unique == 0 {
		t.Fatalf("intern table empty: %+v", st)
	}
	if 2*st.Bytes >= st.NaiveBytes {
		t.Errorf("report-clock storage did not drop by half: %d bytes held vs %d naive (unique %d of %d refs)",
			st.Bytes, st.NaiveBytes, st.Unique, st.Refs)
	}
	t.Logf("races=%d report clocks: %d refs, %d unique, %dB held vs %dB naive (%.1fx)",
		interned.RaceCount, st.Refs, st.Unique, st.Bytes, st.NaiveBytes,
		float64(st.NaiveBytes)/float64(st.Bytes))
}

func area(i int) string {
	return string(rune('a' + i))
}
