package dsmrace

import (
	"strings"
	"testing"
)

func racySpec(seed int64) RunSpec {
	return RunSpec{
		Procs:    3,
		Seed:     seed,
		Detector: "vw-exact",
		Trace:    true,
		Setup:    func(c *Cluster) error { return c.Alloc("x", 0, 1) },
		Program:  func(p *Proc) error { return p.Put("x", 0, Word(p.ID()+1)) },
	}
}

func cleanSpec(seed int64) RunSpec {
	return RunSpec{
		Procs:    3,
		Seed:     seed,
		Detector: "vw-exact",
		Trace:    true,
		Setup:    func(c *Cluster) error { return c.Alloc("x", 0, 1) },
		Program: func(p *Proc) error {
			if p.ID() == 0 {
				if err := p.Put("x", 0, 9); err != nil {
					return err
				}
			}
			p.Barrier()
			_, err := p.GetWord("x", 0)
			return err
		},
	}
}

func TestRunDetectsRaces(t *testing.T) {
	res, err := Run(racySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("expected races")
	}
	truth, err := GroundTruthOf(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Pairs) == 0 {
		t.Fatal("ground truth empty")
	}
	score, err := ScoreDetector(res, "vw-exact")
	if err != nil {
		t.Fatal(err)
	}
	if score.Precision != 1 || score.Recall != 1 {
		t.Fatalf("score: %v", score)
	}
}

func TestRunCleanProgram(t *testing.T) {
	res, err := Run(cleanSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("clean program raced: %v", res.Races)
	}
}

func TestNewDetectorNames(t *testing.T) {
	for _, name := range DetectorNames() {
		det, err := NewDetector(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "off" && det != nil {
			t.Fatal("off must yield nil")
		}
		if name != "off" && det == nil {
			t.Fatalf("%s yielded nil", name)
		}
	}
	if det, err := NewDetector(""); err != nil || det != nil {
		t.Fatal("empty name means detection off")
	}
	if _, err := NewDetector("nope"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestRunSpecValidation(t *testing.T) {
	if _, err := Run(RunSpec{Procs: 2}); err == nil || !strings.Contains(err.Error(), "Program") {
		t.Fatalf("missing program: %v", err)
	}
	bad := racySpec(1)
	bad.Protocol = "smoke-signals"
	if _, err := Run(bad); err == nil {
		t.Fatal("bad protocol must fail")
	}
	bad = racySpec(1)
	bad.Granularity = "galaxy"
	if _, err := Run(bad); err == nil {
		t.Fatal("bad granularity must fail")
	}
	bad = racySpec(1)
	bad.Detector = "psychic"
	if _, err := Run(bad); err == nil {
		t.Fatal("bad detector must fail")
	}
	bad = racySpec(1)
	bad.Programs = []Program{nil}
	if _, err := Run(bad); err == nil {
		t.Fatal("program count mismatch must fail")
	}
}

func TestLiteralProtocolThroughFacade(t *testing.T) {
	spec := racySpec(1)
	spec.Protocol = "literal"
	spec.Detector = "vw"
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("literal protocol should detect the same races")
	}
	// Literal is strictly chattier.
	pig, err := Run(racySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.NetStats.TotalMsgs <= pig.NetStats.TotalMsgs {
		t.Fatalf("literal %d msgs <= piggyback %d", res.NetStats.TotalMsgs, pig.NetStats.TotalMsgs)
	}
}

func TestNodeGranularityThroughFacade(t *testing.T) {
	spec := racySpec(1)
	spec.Granularity = "node"
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
}

func TestGroundTruthRequiresTrace(t *testing.T) {
	spec := racySpec(1)
	spec.Trace = false
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GroundTruthOf(res); err == nil {
		t.Fatal("untraced run must refuse ground truth")
	}
}

func TestExploreSchedulesDivergence(t *testing.T) {
	// The racy program writes three different values to one cell: across
	// seeds with jitter the last writer varies — the paper's §III-C
	// operational race definition.
	rep, err := ExploreSchedules(racySpec(0), SeedRange(12))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diverged() {
		t.Fatalf("racy program did not diverge across seeds: %v", rep)
	}
	if rep.TotalRaces() == 0 {
		t.Fatal("detector silent on diverging program")
	}

	clean, err := ExploreSchedules(cleanSpec(0), SeedRange(12))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Diverged() {
		t.Fatalf("race-free program diverged: %v", clean)
	}
	if clean.TotalRaces() != 0 {
		t.Fatal("detector flagged the clean program")
	}
	if clean.String() == "" || rep.String() == "" {
		t.Fatal("report strings")
	}
}

func TestExploreSchedulesValidation(t *testing.T) {
	if _, err := ExploreSchedules(racySpec(0), nil); err == nil {
		t.Fatal("empty seed list must fail")
	}
}

func TestSeedRange(t *testing.T) {
	s := SeedRange(3)
	if len(s) != 3 || s[0] != 0 || s[2] != 2 {
		t.Fatalf("SeedRange: %v", s)
	}
}
